#include "core/validation_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <span>
#include <thread>

#include "common/rng.h"
#include "lakegen/domains.h"
#include "tests/test_util.h"

namespace av {
namespace {

ValidationRule DigitsRule(uint64_t train_size, uint64_t train_bad) {
  ValidationRule rule;
  rule.method = Method::kFmdvH;
  rule.pattern = *Pattern::Parse("<digit>+");
  rule.segments = {rule.pattern};
  rule.train_size = train_size;
  rule.train_nonconforming = train_bad;
  return rule;
}

std::vector<std::string> DigitBatch(size_t good, size_t bad) {
  std::vector<std::string> values;
  for (size_t i = 0; i < good; ++i) values.push_back(std::to_string(100 + i));
  for (size_t i = 0; i < bad; ++i) values.push_back("N/A");
  return values;
}

// ---------------------------------------------------------------------------
// Streaming sessions: micro-batch == single-pass.

TEST(ValidationSessionTest, MicroBatchSplitsEqualSinglePass) {
  const ValidationRule rule = DigitsRule(1000, 1);
  const auto batch = DigitBatch(855, 45);
  const ValidationReport whole = ValidateColumn(rule, batch);

  // Feed the same batch as micro-batches of every split width, including
  // degenerate 1-value batches.
  for (const size_t chunk : {1u, 7u, 100u, 855u, 900u}) {
    ValidationSession session(rule);
    const std::span<const std::string> all(batch);
    for (size_t begin = 0; begin < batch.size(); begin += chunk) {
      session.Feed(all.subspan(begin, std::min(chunk, batch.size() - begin)));
    }
    const ValidationReport streamed = session.Finish();
    EXPECT_EQ(streamed.total, whole.total) << "chunk=" << chunk;
    EXPECT_EQ(streamed.nonconforming, whole.nonconforming);
    EXPECT_DOUBLE_EQ(streamed.theta_test, whole.theta_test);
    EXPECT_DOUBLE_EQ(streamed.p_value, whole.p_value);
    EXPECT_EQ(streamed.flagged, whole.flagged);
    EXPECT_EQ(streamed.sample_violations, whole.sample_violations);
  }
}

TEST(ValidationSessionTest, StatsMergeIsAssociative) {
  const ValidationRule rule = DigitsRule(1000, 1);
  const auto b1 = DigitBatch(100, 3);
  const auto b2 = DigitBatch(50, 2);
  const auto b3 = DigitBatch(200, 1);
  constexpr size_t kMax = 5;

  const auto stats_of = [&](const std::vector<std::string>& b) {
    ValidationStats s;
    PatternMatcher m(rule.pattern);
    AccumulateValidation(m, b, kMax, &s);
    return s;
  };
  const ValidationStats s1 = stats_of(b1), s2 = stats_of(b2),
                        s3 = stats_of(b3);

  const ValidationStats left =
      ValidationStats::Merge(ValidationStats::Merge(s1, s2, kMax), s3, kMax);
  const ValidationStats right =
      ValidationStats::Merge(s1, ValidationStats::Merge(s2, s3, kMax), kMax);
  EXPECT_EQ(left.total, right.total);
  EXPECT_EQ(left.nonconforming, right.nonconforming);
  EXPECT_EQ(left.sample_violations, right.sample_violations);

  // Merged shard stats equal the single concatenated pass.
  std::vector<std::string> all = b1;
  all.insert(all.end(), b2.begin(), b2.end());
  all.insert(all.end(), b3.begin(), b3.end());
  const ValidationStats whole = stats_of(all);
  EXPECT_EQ(left.total, whole.total);
  EXPECT_EQ(left.nonconforming, whole.nonconforming);
  EXPECT_EQ(left.sample_violations, whole.sample_violations);

  // And the homogeneity test sees identical counts either way.
  const ValidationReport merged_report = FinishValidation(rule, left);
  const ValidationReport whole_report = FinishValidation(rule, whole);
  EXPECT_EQ(merged_report.nonconforming, whole_report.nonconforming);
  EXPECT_DOUBLE_EQ(merged_report.p_value, whole_report.p_value);
  EXPECT_EQ(merged_report.flagged, whole_report.flagged);
}

TEST(ValidationSessionTest, AbsorbShardsEqualsSequentialFeed) {
  const ValidationRule rule = DigitsRule(1000, 1);
  const auto b1 = DigitBatch(300, 20);
  const auto b2 = DigitBatch(400, 30);

  ValidationSession fed(rule);
  fed.Feed(b1);
  fed.Feed(b2);

  // Shard 2 validated independently (e.g. on another thread), then absorbed.
  ValidationSession shard1(rule);
  shard1.Feed(b1);
  ValidationSession shard2(rule);
  shard2.Feed(b2);
  ValidationSession merged(rule);
  merged.Absorb(shard1.stats());
  merged.Absorb(shard2.stats());

  const auto a = fed.Finish();
  const auto b = merged.Finish();
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.nonconforming, b.nonconforming);
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
  EXPECT_EQ(a.flagged, b.flagged);
  EXPECT_EQ(a.sample_violations, b.sample_violations);
}

TEST(ValidationSessionTest, WeightedViewEqualsExpandedColumn) {
  const ValidationRule rule = DigitsRule(100, 0);
  // (value, count) pre-aggregated input vs its row-expanded equivalent.
  const std::vector<std::string_view> distinct = {"123", "456", "N/A"};
  const std::vector<uint32_t> weights = {40, 9, 3};
  std::vector<std::string> expanded;
  for (size_t i = 0; i < distinct.size(); ++i) {
    for (uint32_t k = 0; k < weights[i]; ++k) {
      expanded.emplace_back(distinct[i]);
    }
  }
  const auto weighted =
      ValidateColumn(rule, ColumnView(distinct, weights));
  const auto flat = ValidateColumn(rule, expanded);
  EXPECT_EQ(weighted.total, flat.total);
  EXPECT_EQ(weighted.nonconforming, flat.nonconforming);
  EXPECT_DOUBLE_EQ(weighted.p_value, flat.p_value);
  EXPECT_EQ(weighted.flagged, flat.flagged);
}

TEST(ValidationSessionTest, SampleViolationCapConfigurable) {
  const ValidationRule rule = DigitsRule(10, 0);
  const auto batch = DigitBatch(0, 50);
  EXPECT_EQ(ValidateColumn(rule, batch).sample_violations.size(), 5u);
  EXPECT_EQ(ValidateColumn(rule, batch, 12).sample_violations.size(), 12u);
  EXPECT_EQ(ValidateColumn(rule, batch, 0).sample_violations.size(), 0u);

  AutoValidateOptions opts;
  opts.max_sample_violations = 2;
  const AutoValidate engine(nullptr, opts);
  EXPECT_EQ(engine.Validate(rule, batch).sample_violations.size(), 2u);
}

// ---------------------------------------------------------------------------
// Rule store semantics (no index needed).

TEST(ValidationServiceStoreTest, UpsertFindRemoveVersioning) {
  ValidationService service(nullptr, AutoValidateOptions{},
                            /*num_train_threads=*/1);
  EXPECT_EQ(service.version(), 0u);
  EXPECT_EQ(service.size(), 0u);
  EXPECT_EQ(service.Find("locale"), nullptr);

  service.Upsert("locale", DigitsRule(100, 0));
  EXPECT_EQ(service.version(), 1u);
  ASSERT_NE(service.Find("locale"), nullptr);
  EXPECT_EQ(service.Find("locale")->train_size, 100u);

  service.Upsert("locale", DigitsRule(200, 1));
  EXPECT_EQ(service.version(), 2u);
  EXPECT_EQ(service.Find("locale")->train_size, 200u);

  // A snapshot taken before a removal keeps its rules alive.
  const auto snapshot = service.Snapshot();
  EXPECT_TRUE(service.Remove("locale"));
  EXPECT_EQ(service.version(), 3u);
  EXPECT_EQ(service.Find("locale"), nullptr);
  EXPECT_EQ(snapshot->rules.at("locale")->train_size, 200u);

  // Removing a missing rule neither succeeds nor bumps the version.
  EXPECT_FALSE(service.Remove("locale"));
  EXPECT_EQ(service.version(), 3u);
}

TEST(ValidationServiceStoreTest, ValidateByNameAndNotFound) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));

  const auto drifted = service.Validate("ids", DigitBatch(855, 45));
  ASSERT_TRUE(drifted.ok());
  EXPECT_TRUE(drifted->flagged);

  const auto clean = service.Validate("ids", DigitBatch(900, 0));
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->flagged);

  EXPECT_EQ(service.Validate("unknown", DigitBatch(10, 0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.OpenSession("unknown").status().code(),
            StatusCode::kNotFound);
}

TEST(ValidationServiceStoreTest, TrainWithoutIndexFails) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  const auto batch = DigitBatch(50, 0);
  EXPECT_EQ(service.Train("x", batch).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<ValidationService::NamedColumn> columns = {{"x", batch}};
  const auto outcomes = service.TrainAll(columns);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(ValidationServiceStoreTest, SessionSurvivesStoreUpdate) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  auto session = service.OpenSession("ids");
  ASSERT_TRUE(session.ok());
  session->Feed(DigitBatch(400, 20));
  // Concurrent store churn must not invalidate the open session's rule.
  service.Upsert("ids", DigitsRule(7, 7));
  EXPECT_TRUE(service.Remove("ids"));
  session->Feed(DigitBatch(455, 25));
  const auto report = session->Finish();
  EXPECT_EQ(report.total, 900u);
  EXPECT_EQ(report.nonconforming, 45u);
  EXPECT_TRUE(report.flagged);
  EXPECT_EQ(session->rule().train_size, 1000u);
}

TEST(ValidationServiceStoreTest, SaveLoadRoundTrip) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("plain", DigitsRule(100, 2));
  ValidationRule awkward = DigitsRule(10, 0);
  awkward.pattern = Pattern({Atom::Literal("a|b\\"),
                             Atom::Var(AtomKind::kDigitsVar)});
  awkward.segments = {awkward.pattern};
  service.Upsert("weird|name\\col", awkward);

  const std::string path =
      ::testing::TempDir() + "/ruleset_roundtrip.avrs";
  ASSERT_TRUE(service.Save(path).ok());

  ValidationService loaded(nullptr, AutoValidateOptions{}, 1);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.version(), service.version());
  ASSERT_EQ(loaded.size(), 2u);
  ASSERT_NE(loaded.Find("plain"), nullptr);
  ASSERT_NE(loaded.Find("weird|name\\col"), nullptr);
  EXPECT_EQ(loaded.Find("plain")->Serialize(),
            service.Find("plain")->Serialize());
  EXPECT_EQ(loaded.Find("weird|name\\col")->Serialize(), awkward.Serialize());

  // Deterministic bytes: saving the loaded set reproduces the file.
  const std::string path2 = ::testing::TempDir() + "/ruleset_roundtrip2.avrs";
  ASSERT_TRUE(loaded.Save(path2).ok());
  std::ifstream f1(path), f2(path2);
  const std::string c1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  const std::string c2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(c1, c2);
}

TEST(ValidationServiceStoreTest, LoadRejectsMalformedFiles) {
  const auto write_file = [](const std::string& name,
                             const std::string& content) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
  };
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("keep", DigitsRule(5, 0));

  EXPECT_EQ(service.Load("/nonexistent/path.avrs").code(),
            StatusCode::kIOError);
  EXPECT_EQ(service.Load(write_file("empty.avrs", "")).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(service.Load(write_file("magic.avrs", "BOGUS|version=1|count=0\n"))
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(
      service.Load(write_file("hdr.avrs", "AVRULESET1|version=x|count=0\n"))
          .code(),
      StatusCode::kCorruption);
  EXPECT_EQ(
      service.Load(write_file("hdr2.avrs", "AVRULESET1|version=1|count= -1\n"))
          .code(),
      StatusCode::kCorruption);
  EXPECT_EQ(service
                .Load(write_file("trunc.avrs",
                                 "AVRULESET1|version=1|count=2\n"
                                 "a|AVRULE1|pattern=<digit>+\n"))
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(service
                .Load(write_file("badrule.avrs",
                                 "AVRULESET1|version=1|count=1\n"
                                 "a|AVRULE1|cov=notanumber|pattern=<digit>+\n"))
                .code(),
            StatusCode::kCorruption);

  // Failed loads must leave the store untouched.
  EXPECT_EQ(service.size(), 1u);
  EXPECT_NE(service.Find("keep"), nullptr);
}

// ---------------------------------------------------------------------------
// Table-level serving: ValidateAll / TableReport / TableSession.

ValidationRule LettersRule(uint64_t train_size, uint64_t train_bad) {
  ValidationRule rule;
  rule.method = Method::kFmdvH;
  rule.pattern = *Pattern::Parse("<letter>+");
  rule.segments = {rule.pattern};
  rule.train_size = train_size;
  rule.train_nonconforming = train_bad;
  return rule;
}

std::vector<std::string> LetterBatch(size_t good, size_t bad) {
  std::vector<std::string> values;
  for (size_t i = 0; i < good; ++i) values.push_back("word" + std::string(1, 'a' + i % 26));
  for (size_t i = 0; i < bad; ++i) values.push_back("17-" + std::to_string(i % 4));
  return values;
}

void ExpectReportsEqual(const ValidationReport& a, const ValidationReport& b,
                        bool compare_samples = true) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.nonconforming, b.nonconforming);
  EXPECT_DOUBLE_EQ(a.theta_test, b.theta_test);
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
  EXPECT_EQ(a.flagged, b.flagged);
  if (compare_samples) {
    EXPECT_EQ(a.sample_violations, b.sample_violations);
  }
}

TEST(ValidateAllTest, MatchesSingleColumnValidateBytewise) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  service.Upsert("names", LettersRule(500, 2));

  // Batches with repeated violating values, so the tokenize-once dedup
  // path is actually exercised.
  const auto ids = DigitBatch(855, 45);
  const auto names = LetterBatch(400, 12);
  const auto orphan = DigitBatch(30, 0);
  const std::vector<NamedColumn> table = {
      {"ids", ids}, {"names", names}, {"unmonitored", orphan}};

  const TableReport report = service.ValidateAll(table);
  EXPECT_EQ(report.store_version, service.version());
  EXPECT_EQ(report.columns_total, 3u);
  EXPECT_EQ(report.columns_validated, 2u);
  EXPECT_EQ(report.columns_flagged, 2u);
  EXPECT_TRUE(report.any_flagged());
  EXPECT_EQ(report.rows_scanned, ids.size() + names.size());

  ASSERT_EQ(report.columns.size(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    const auto& col = report.columns[i];
    ASSERT_TRUE(col.status.ok()) << col.name;
    ASSERT_NE(col.rule, nullptr);
    const auto single =
        service.Validate(col.name, i == 0 ? ids : names);
    ASSERT_TRUE(single.ok());
    ExpectReportsEqual(col.report, *single);
  }
  EXPECT_EQ(report.columns[2].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(report.columns[2].rule, nullptr);
  EXPECT_EQ(report.Find("names"), &report.columns[1]);
  EXPECT_EQ(report.Find("nope"), nullptr);
}

TEST(ValidateAllTest, WeightedTableEqualsRowExpandedTable) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(100, 0));
  service.Upsert("names", LettersRule(100, 0));

  const std::vector<std::string_view> id_distinct = {"123", "456", "N/A",
                                                     "x9"};
  const std::vector<uint32_t> id_weights = {40, 9, 3, 2};
  const std::vector<std::string_view> name_distinct = {"alpha", "beta", "17"};
  const std::vector<uint32_t> name_weights = {25, 25, 4};

  const auto expand = [](const std::vector<std::string_view>& distinct,
                         const std::vector<uint32_t>& weights) {
    std::vector<std::string> out;
    for (size_t i = 0; i < distinct.size(); ++i) {
      for (uint32_t k = 0; k < weights[i]; ++k) out.emplace_back(distinct[i]);
    }
    return out;
  };
  const auto ids_expanded = expand(id_distinct, id_weights);
  const auto names_expanded = expand(name_distinct, name_weights);

  const TableReport weighted = service.ValidateAll(
      std::vector<NamedColumn>{{"ids", ColumnView(id_distinct, id_weights)},
                               {"names", ColumnView(name_distinct,
                                                    name_weights)}});
  const TableReport expanded = service.ValidateAll(std::vector<NamedColumn>{
      {"ids", ids_expanded}, {"names", names_expanded}});

  ASSERT_EQ(weighted.columns.size(), expanded.columns.size());
  EXPECT_EQ(weighted.rows_scanned, expanded.rows_scanned);
  EXPECT_EQ(weighted.columns_flagged, expanded.columns_flagged);
  for (size_t i = 0; i < weighted.columns.size(); ++i) {
    ExpectReportsEqual(weighted.columns[i].report,
                       expanded.columns[i].report);
  }
}

TEST(ValidateAllTest, TableReportMergeAssociativeForArbitraryShardSplits) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  service.Upsert("names", LettersRule(500, 2));
  const size_t max_samples = service.options().max_sample_violations;

  const auto ids = DigitBatch(300, 21);
  const auto names = LetterBatch(280, 41);
  const auto orphan = DigitBatch(321, 0);
  const auto table_of = [&](size_t begin, size_t end) {
    // Row-shard every column of the table with the same [begin, end) split.
    const auto slice = [&](const std::vector<std::string>& v) {
      return std::span<const std::string>(v).subspan(
          std::min(begin, v.size()),
          std::min(end, v.size()) - std::min(begin, v.size()));
    };
    return std::vector<NamedColumn>{{"ids", slice(ids)},
                                    {"names", slice(names)},
                                    {"unmonitored", slice(orphan)}};
  };
  const TableReport whole = service.ValidateAll(table_of(0, 321));

  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t cut1 = rng.Below(322);
    const size_t cut2 = cut1 + rng.Below(322 - cut1);
    const TableReport a = service.ValidateAll(table_of(0, cut1));
    const TableReport b = service.ValidateAll(table_of(cut1, cut2));
    const TableReport c = service.ValidateAll(table_of(cut2, 321));

    const TableReport left = TableReport::Merge(
        TableReport::Merge(a, b, max_samples), c, max_samples);
    const TableReport right = TableReport::Merge(
        a, TableReport::Merge(b, c, max_samples), max_samples);

    // Associativity: both groupings give identical reports (including
    // sample lists — cap'd concatenation is associative).
    ASSERT_EQ(left.columns.size(), right.columns.size());
    for (size_t i = 0; i < left.columns.size(); ++i) {
      EXPECT_EQ(left.columns[i].name, right.columns[i].name);
      EXPECT_EQ(left.columns[i].status.code(),
                right.columns[i].status.code());
      ExpectReportsEqual(left.columns[i].report, right.columns[i].report);
    }
    EXPECT_EQ(left.rows_scanned, right.rows_scanned);
    EXPECT_EQ(left.columns_flagged, right.columns_flagged);

    // Shard-reduce equals the single-pass table run on counts, test
    // statistics and verdicts. (Sample lists can differ: a violating value
    // repeated across shards is deduplicated only within each shard.)
    EXPECT_EQ(left.store_version, whole.store_version);
    EXPECT_EQ(left.rows_scanned, whole.rows_scanned);
    ASSERT_EQ(left.columns.size(), whole.columns.size());
    for (size_t i = 0; i < whole.columns.size(); ++i) {
      ExpectReportsEqual(left.columns[i].report, whole.columns[i].report,
                         /*compare_samples=*/false);
    }
  }

  // Self-merge is defined like ValidationStats: counts double, no UB.
  TableReport doubled = whole;
  doubled.MergeFrom(doubled, max_samples);
  EXPECT_EQ(doubled.rows_scanned, 2 * whole.rows_scanned);
  EXPECT_EQ(doubled.columns.size(), whole.columns.size());
  EXPECT_EQ(doubled.columns[0].stats.total, 2 * whole.columns[0].stats.total);
}

TEST(ValidateAllTest, MergeMatchesDuplicateColumnNamesByOccurrence) {
  // ValidateAll supports tables that repeat a column name (each entry gets
  // its own outcome). Regression: a first-name-match merge would fold both
  // of a shard's same-named entries into the FIRST entry here —
  // double-counting it and leaving the second entry un-merged. Outcomes
  // must match by (name, occurrence index).
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  const size_t max_samples = service.options().max_sample_violations;

  // Two distinct columns sharing the name: very different violation rates.
  const auto col_a = DigitBatch(200, 40);
  const auto col_b = DigitBatch(240, 0);
  const auto table_of = [&](size_t begin, size_t end) {
    const auto slice = [&](const std::vector<std::string>& v) {
      return std::span<const std::string>(v).subspan(begin, end - begin);
    };
    return std::vector<NamedColumn>{{"ids", slice(col_a)},
                                    {"ids", slice(col_b)}};
  };
  const TableReport whole = service.ValidateAll(table_of(0, 240));
  const TableReport merged =
      TableReport::Merge(service.ValidateAll(table_of(0, 100)),
                         service.ValidateAll(table_of(100, 240)), max_samples);

  ASSERT_EQ(merged.columns.size(), 2u);
  EXPECT_EQ(merged.columns[0].stats.total, whole.columns[0].stats.total);
  EXPECT_EQ(merged.columns[0].stats.nonconforming,
            whole.columns[0].stats.nonconforming);
  EXPECT_EQ(merged.columns[1].stats.total, whole.columns[1].stats.total);
  EXPECT_EQ(merged.columns[1].stats.nonconforming,
            whole.columns[1].stats.nonconforming);
  for (size_t i = 0; i < 2; ++i) {
    ExpectReportsEqual(merged.columns[i].report, whole.columns[i].report,
                       /*compare_samples=*/false);
  }
  EXPECT_EQ(merged.rows_scanned, whole.rows_scanned);
  EXPECT_EQ(merged.columns_flagged, whole.columns_flagged);
}

#ifndef AV_TSAN  // death tests fork; see test_util.h
TEST(ValidateAllDeathTest, MergeAcrossStoreGenerationsAborts) {
  // Merging shards judged by different rule-store generations would blend
  // counts from different rules; the mismatch must fail fast in every
  // build mode, not just under assert.
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  const auto batch = DigitBatch(100, 5);
  const std::vector<NamedColumn> table = {{"ids", batch}};
  const TableReport gen1 = service.ValidateAll(table);
  service.Upsert("ids", DigitsRule(2000, 2));
  const TableReport gen2 = service.ValidateAll(table);
  ASSERT_NE(gen1.store_version, gen2.store_version);
  EXPECT_DEATH(TableReport::Merge(gen1, gen2, 5), "store generation");
}
#endif  // AV_TSAN

TEST(TableSessionTest, MicroBatchTableFeedsEqualWholeTableRun) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  service.Upsert("names", LettersRule(500, 2));

  const auto ids = DigitBatch(300, 21);
  const auto names = LetterBatch(280, 41);
  const TableReport whole = service.ValidateAll(
      std::vector<NamedColumn>{{"ids", ids}, {"names", names}});

  TableSession session = service.OpenTableSession();
  const uint64_t pinned_version = service.version();
  const std::span<const std::string> all_ids(ids);
  const std::span<const std::string> all_names(names);
  for (size_t b = 0; b < 4; ++b) {
    const size_t begin_i = b * (ids.size() / 4);
    const size_t end_i = b == 3 ? ids.size() : begin_i + ids.size() / 4;
    const size_t begin_n = b * (names.size() / 4);
    const size_t end_n = b == 3 ? names.size() : begin_n + names.size() / 4;
    const std::vector<NamedColumn> batch = {
        {"ids", all_ids.subspan(begin_i, end_i - begin_i)},
        {"names", all_names.subspan(begin_n, end_n - begin_n)}};
    session.Feed(batch);
    // Mid-stream store churn must not affect the pinned generation —
    // including a rule added for a column the session first sees later.
    if (b == 1) {
      service.Upsert("ids", DigitsRule(7, 7));
      service.Upsert("late", DigitsRule(10, 0));
    }
    if (b == 2) session.Feed("late", all_ids.subspan(0, 5));
  }

  EXPECT_EQ(session.store_version(), pinned_version);
  const TableReport streamed = session.Finish();
  EXPECT_EQ(streamed.store_version, pinned_version);
  ASSERT_EQ(streamed.columns.size(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(streamed.columns[i].name, whole.columns[i].name);
    ExpectReportsEqual(streamed.columns[i].report, whole.columns[i].report,
                       /*compare_samples=*/false);
  }
  // "late" was upserted after the session was pinned: still unmonitored.
  EXPECT_EQ(streamed.columns[2].name, "late");
  EXPECT_EQ(streamed.columns[2].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(streamed.columns_validated, 2u);
  EXPECT_EQ(streamed.columns_flagged, whole.columns_flagged);
}

// ---------------------------------------------------------------------------
// Concurrency: wait-free reads under writer churn, parallel TrainAll.

TEST(ValidationServiceConcurrencyTest, ConcurrentValidateUnderWriterChurn) {
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  const auto clean = DigitBatch(900, 0);
  const auto drifted = DigitBatch(855, 45);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> validations{0};
  std::atomic<uint64_t> wrong{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const bool use_drifted = (t % 2) == 0;
        const auto report =
            service.Validate("ids", use_drifted ? drifted : clean);
        if (!report.ok() || report->flagged != use_drifted) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        validations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer churn: every upsert replaces the rule with an equivalent one
  // (same counts), so readers must observe identical verdicts throughout.
  // Churn continues until the readers have demonstrably raced against it
  // (progress-based, not iteration-based: on a loaded single-core box a
  // fixed writer loop can finish before any reader is even scheduled).
  int churns = 0;
  while (validations.load(std::memory_order_relaxed) < 200 || churns < 500) {
    service.Upsert("ids", DigitsRule(1000, 1));
    service.Upsert("other_" + std::to_string(churns % 7), DigitsRule(10, 0));
    ++churns;
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GE(validations.load(), 200u);
  EXPECT_GE(service.version(), 1001u);
}

TEST(ValidationServiceConcurrencyTest, ValidateAllNeverMixesGenerations) {
  // The store alternates between two rule generations for "ids": one that
  // flags the drifted batch and one (theta_train = 1.0) that never flags
  // anything. A table listing the same column twice must get BOTH outcomes
  // from one generation — identical verdict and p-value — no matter how the
  // writer interleaves. A per-column Find() implementation (no shared
  // snapshot) fails this under churn.
  ValidationService service(nullptr, AutoValidateOptions{}, 1);
  service.Upsert("ids", DigitsRule(1000, 1));
  const auto drifted = DigitBatch(855, 45);
  const std::vector<NamedColumn> table = {{"ids", drifted}, {"ids", drifted}};

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> runs{0};
  std::atomic<uint64_t> mixed{0};
  std::atomic<uint64_t> flagged_seen{0};
  std::atomic<uint64_t> unflagged_seen{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const TableReport report = service.ValidateAll(table);
        const auto& a = report.columns[0];
        const auto& b = report.columns[1];
        if (!a.status.ok() || !b.status.ok() ||
            a.report.flagged != b.report.flagged ||
            a.report.p_value != b.report.p_value || a.rule != b.rule) {
          mixed.fetch_add(1, std::memory_order_relaxed);
        }
        (a.report.flagged ? flagged_seen : unflagged_seen)
            .fetch_add(1, std::memory_order_relaxed);
        runs.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  int churns = 0;
  while (runs.load(std::memory_order_relaxed) < 200 || churns < 500) {
    service.Upsert("ids", (churns % 2 == 0) ? DigitsRule(7, 7)
                                            : DigitsRule(1000, 1));
    ++churns;
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mixed.load(), 0u);
  EXPECT_GE(runs.load(), 200u);
}

class ValidationServiceTrainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(testutil::DomainsCorpus({
        {"ipv4", 25},
        {"iso_date", 25},
        {"guid", 20},
        {"nl_phrase", 15},
    }));
    index_ = new PatternIndex(testutil::BuildTestIndex(*corpus_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete corpus_;
  }

  static std::vector<std::string> DomainColumn(const std::string& name,
                                               size_t rows, uint64_t seed) {
    for (const auto& d : EnterpriseDomains()) {
      if (d.name != name) continue;
      Rng rng(seed);
      RowGen gen = d.make_column(rng);
      std::vector<std::string> values;
      for (size_t i = 0; i < rows; ++i) values.push_back(gen(rng));
      return values;
    }
    ADD_FAILURE() << "unknown domain " << name;
    return {};
  }

  static Corpus* corpus_;
  static PatternIndex* index_;
};

Corpus* ValidationServiceTrainTest::corpus_ = nullptr;
PatternIndex* ValidationServiceTrainTest::index_ = nullptr;

TEST_F(ValidationServiceTrainTest, TrainAllFansOutAndInstallsOneGeneration) {
  AutoValidateOptions opts;
  opts.min_coverage = 5;
  ValidationService service(index_, opts, /*num_train_threads=*/4);

  const auto ips = DomainColumn("ipv4", 60, 1);
  const auto dates = DomainColumn("iso_date", 60, 2);
  const auto guids = DomainColumn("guid", 60, 3);
  std::vector<std::string> gibberish;  // heterogeneous: must abstain
  for (int i = 0; i < 40; ++i) {
    gibberish.push_back(i % 2 == 0 ? std::to_string(i)
                                   : "completely different " +
                                         std::to_string(i));
  }
  const std::vector<ValidationService::NamedColumn> columns = {
      {"src_ip", ips},
      {"day", dates},
      {"request_id", guids},
      {"junk", gibberish},
  };
  const auto outcomes = service.TrainAll(columns, Method::kFmdvVH);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_TRUE(outcomes[1].status.ok()) << outcomes[1].status.ToString();
  EXPECT_TRUE(outcomes[2].status.ok()) << outcomes[2].status.ToString();
  EXPECT_FALSE(outcomes[3].status.ok());

  // One batch == one version bump; abstained columns are absent.
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.size(), 3u);
  EXPECT_EQ(service.Find("junk"), nullptr);

  // Deterministic vs the sequential facade: TrainAll rules are the same
  // rules AutoValidate::Train produces, regardless of pool scheduling.
  const AutoValidate engine(index_, opts);
  for (const auto& [name, values] :
       {std::pair<std::string, const std::vector<std::string>*>{"src_ip",
                                                                &ips},
        {"day", &dates},
        {"request_id", &guids}}) {
    auto solo = engine.Train(*values, Method::kFmdvVH);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(service.Find(name)->Serialize(), solo->Serialize()) << name;
  }

  // Serving: the drifted feed alarms, the clean feed does not.
  const auto clean = service.Validate("src_ip", DomainColumn("ipv4", 200, 9));
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->flagged);
  const auto drifted =
      service.Validate("src_ip", DomainColumn("guid", 200, 10));
  ASSERT_TRUE(drifted.ok());
  EXPECT_TRUE(drifted->flagged);
}

TEST_F(ValidationServiceTrainTest, ValidateAllConsistentUnderTrainAllChurn) {
  // Whole-table validation racing TrainAll re-training: every TableReport
  // must be internally consistent (single generation: all columns present,
  // trained rules only ever from one TrainAll batch) and clean feeds must
  // never alarm. TrainAll is deterministic for a fixed feed, so any mix of
  // generations would still validate identically — the point here is that
  // the snapshot/pool machinery is race-free (the TSan CI job checks this
  // test) and reports never observe a half-installed batch.
  AutoValidateOptions opts;
  opts.min_coverage = 5;
  ValidationService service(index_, opts, /*num_train_threads=*/2);

  const auto ips = DomainColumn("ipv4", 60, 1);
  const auto dates = DomainColumn("iso_date", 60, 2);
  const std::vector<NamedColumn> feed = {{"src_ip", ips}, {"day", dates}};
  ASSERT_EQ(service.TrainAll(feed, Method::kFmdvVH).size(), 2u);
  const uint64_t v0 = service.version();

  const auto ips_clean = DomainColumn("ipv4", 120, 9);
  const auto dates_clean = DomainColumn("iso_date", 120, 8);
  const std::vector<NamedColumn> table = {{"src_ip", ips_clean},
                                          {"day", dates_clean}};

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const TableReport report = service.ValidateAll(table);
      if (report.columns_validated != 2 || report.columns_flagged != 0 ||
          report.store_version < v0) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int i = 0; i < 10; ++i) {
    const auto outcomes = service.TrainAll(feed, Method::kFmdvVH);
    ASSERT_EQ(outcomes.size(), 2u);
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(service.version(), v0 + 10);
}

}  // namespace
}  // namespace av
