// Property tests of the ValidationRule line format: randomized round-trips
// and malformed-input rejection (the rule store's persistence depends on
// both directions being exact).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/validator.h"

namespace av {
namespace {

/// Pattern texts covering every atom family the format can carry, including
/// literals with the separator and the escape character.
const char* kPatternPool[] = {
    "<digit>+",
    "<letter>+",
    "<digit>{4}-<digit>{2}-<digit>{2}",
    "<num>",
    "<any>+",
    "id=<digit>{6};",
    "<upper>{2}:<lower>+",
    "<alnum>+",
    "JOB-<digit>+",
    "a|b\\c=<digit>+",
    "<letter>+ <digit>{2} <digit>{4}",
};

ValidationRule RandomRule(Rng& rng) {
  ValidationRule rule;
  rule.method = static_cast<Method>(rng.Below(4));
  rule.test = static_cast<HomogeneityTest>(rng.Below(3));
  rule.fpr_estimate = static_cast<double>(rng.Below(1000000)) / 1e7;
  rule.coverage = rng.Below(1u << 30);
  rule.train_size = 1 + rng.Below(1u << 20);
  rule.train_nonconforming = rng.Below(static_cast<uint32_t>(
      std::min<uint64_t>(rule.train_size + 1, 1u << 20)));
  rule.significance = 0.001 * static_cast<double>(1 + rng.Below(100));
  const size_t pool = sizeof(kPatternPool) / sizeof(kPatternPool[0]);
  rule.pattern = *Pattern::Parse(kPatternPool[rng.Below(pool)]);
  const size_t num_segments = 1 + rng.Below(3);
  rule.segments.clear();
  for (size_t i = 0; i < num_segments; ++i) {
    rule.segments.push_back(*Pattern::Parse(kPatternPool[rng.Below(pool)]));
  }
  return rule;
}

TEST(RuleSerializationPropertyTest, RandomizedRoundTrip) {
  Rng rng(20260731);
  for (int trial = 0; trial < 200; ++trial) {
    const ValidationRule rule = RandomRule(rng);
    const std::string line = rule.Serialize();
    auto back = ValidationRule::Deserialize(line);
    ASSERT_TRUE(back.ok()) << "trial " << trial << ": "
                           << back.status().ToString() << "\n  " << line;
    EXPECT_EQ(back->method, rule.method);
    EXPECT_EQ(back->test, rule.test);
    // %.17g round-trips doubles exactly.
    EXPECT_EQ(back->fpr_estimate, rule.fpr_estimate);
    EXPECT_EQ(back->significance, rule.significance);
    EXPECT_EQ(back->coverage, rule.coverage);
    EXPECT_EQ(back->train_size, rule.train_size);
    EXPECT_EQ(back->train_nonconforming, rule.train_nonconforming);
    EXPECT_EQ(back->pattern.ToString(), rule.pattern.ToString());
    ASSERT_EQ(back->segments.size(), rule.segments.size());
    for (size_t i = 0; i < rule.segments.size(); ++i) {
      EXPECT_EQ(back->segments[i].ToString(), rule.segments[i].ToString());
    }
    // Serialization is a fixed point: reserializing reproduces the line.
    EXPECT_EQ(back->Serialize(), line);
  }
}

TEST(RuleSerializationPropertyTest, TruncationsNeverRoundTrip) {
  // Any strict prefix of a valid line must be rejected (missing pattern,
  // dangling field, cut escape...) — never parsed into a different rule.
  Rng rng(7);
  const std::string line = RandomRule(rng).Serialize();
  for (size_t len = 0; len < line.size(); ++len) {
    const std::string_view prefix = std::string_view(line).substr(0, len);
    auto r = ValidationRule::Deserialize(prefix);
    if (!r.ok()) continue;
    // A prefix may still parse when the cut lands exactly between fields
    // and the pattern field is already complete; it must then agree with
    // the full line's prefix semantics (same pattern, earlier fields).
    EXPECT_GE(len, line.find("pattern=")) << "parsed without a pattern";
  }
}

TEST(RuleSerializationPropertyTest, RejectsNonNumericFields) {
  const char* bad[] = {
      "AVRULE1|method=abc|pattern=<digit>+",
      "AVRULE1|method=|pattern=<digit>+",
      "AVRULE1|method=-1|pattern=<digit>+",
      "AVRULE1|fpr=fast|pattern=<digit>+",
      "AVRULE1|cov=12x|pattern=<digit>+",
      "AVRULE1|cov=-4|pattern=<digit>+",
      "AVRULE1|train=1e3|pattern=<digit>+",
      "AVRULE1|nonconf=0.5|pattern=<digit>+",
      "AVRULE1|test=two|pattern=<digit>+",
      "AVRULE1|test=3|pattern=<digit>+",
      "AVRULE1|alpha=p<0.05|pattern=<digit>+",
      // strtoull/strtod alone would accept these (whitespace skip, negative
      // wrap-around to huge u64, inf/nan, hex floats) — the strict parsers
      // must not.
      "AVRULE1|cov= 5|pattern=<digit>+",
      "AVRULE1|cov= -1|pattern=<digit>+",
      "AVRULE1|train=+9|pattern=<digit>+",
      "AVRULE1|fpr=inf|pattern=<digit>+",
      "AVRULE1|fpr=nan|pattern=<digit>+",
      "AVRULE1|fpr=0x1p3|pattern=<digit>+",
      "AVRULE1|alpha= 0.01|pattern=<digit>+",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ValidationRule::Deserialize(line).ok()) << line;
  }
}

TEST(RuleSerializationPropertyTest, RejectsStructuralDamage) {
  EXPECT_FALSE(ValidationRule::Deserialize("").ok());
  EXPECT_FALSE(ValidationRule::Deserialize("AVRULE2|pattern=<digit>+").ok())
      << "wrong version tag must be rejected";
  EXPECT_FALSE(ValidationRule::Deserialize("avrule1|pattern=<digit>+").ok());
  EXPECT_FALSE(ValidationRule::Deserialize("AVRULE1").ok());
  EXPECT_FALSE(ValidationRule::Deserialize("AVRULE1|").ok());
  EXPECT_FALSE(
      ValidationRule::Deserialize("AVRULE1|pattern=<digit>+|mystery=1").ok());
  EXPECT_FALSE(
      ValidationRule::Deserialize("AVRULE1|pattern=<notanatom>").ok());
  // Inconsistent counts.
  EXPECT_FALSE(ValidationRule::Deserialize(
                   "AVRULE1|train=3|nonconf=4|pattern=<digit>+")
                   .ok());
}

TEST(RuleSerializationPropertyTest, RejectsDuplicateFields) {
  // Regression: every field except the repeatable `segment` list used to be
  // last-wins — a spliced line carrying two conflicting values for a key
  // parsed successfully with the earlier value silently overwritten.
  const char* bad[] = {
      "AVRULE1|method=1|method=2|pattern=<digit>+",
      "AVRULE1|fpr=0.5|fpr=0.1|pattern=<digit>+",
      "AVRULE1|cov=5|cov=6|pattern=<digit>+",
      "AVRULE1|train=10|train=20|pattern=<digit>+",
      "AVRULE1|nonconf=1|nonconf=2|train=5|pattern=<digit>+",
      "AVRULE1|test=0|test=1|pattern=<digit>+",
      "AVRULE1|alpha=0.01|alpha=0.05|pattern=<digit>+",
      "AVRULE1|pattern=<digit>+|pattern=<letter>+",
  };
  for (const char* line : bad) {
    const auto r = ValidationRule::Deserialize(line);
    ASSERT_FALSE(r.ok()) << line;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << line;
  }
  // The segment list legitimately repeats (one field per vertical cut).
  EXPECT_TRUE(ValidationRule::Deserialize(
                  "AVRULE1|pattern=<digit>+|segment=<digit>+|segment=<digit>+")
                  .ok());
}

}  // namespace
}  // namespace av
