// Tests for the pluggable lake-format subsystem (corpus/format.h): format
// detection and the registry, JSONL nested flattening, the AVCOL1 columnar
// codec, gzip CSV, the CSV edge-case parity suite shared between the plain
// and gzip readers, streaming-residency regressions, and the cross-format
// index byte-identity golden (the load-bearing contract: one logical lake,
// four encodings, one AVIDX003 byte stream).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/hash.h"
#include "common/temp_file.h"
#include "corpus/avcol.h"
#include "corpus/csv.h"
#include "corpus/format.h"
#include "corpus/gzip.h"
#include "corpus/jsonl.h"
#include "index/indexer.h"
#include "index/pattern_index.h"
#include "lakegen/lakegen.h"
#include "tests/test_util.h"

namespace av {
namespace {

void WriteRawFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Column MakeCol(std::string table, std::string name,
               std::vector<std::string> values) {
  Column c;
  c.table_name = std::move(table);
  c.name = std::move(name);
  c.values = std::move(values);
  return c;
}

// ------------------------------------------------------------ registry

TEST(LakeFormatTest, ParseAndName) {
  LakeFormat f = LakeFormat::kAuto;
  EXPECT_TRUE(ParseLakeFormat("csv", &f));
  EXPECT_EQ(f, LakeFormat::kCsv);
  EXPECT_TRUE(ParseLakeFormat("csv.gz", &f));
  EXPECT_EQ(f, LakeFormat::kCsvGz);
  EXPECT_TRUE(ParseLakeFormat("gz", &f));
  EXPECT_EQ(f, LakeFormat::kCsvGz);
  EXPECT_TRUE(ParseLakeFormat("jsonl", &f));
  EXPECT_EQ(f, LakeFormat::kJsonl);
  EXPECT_TRUE(ParseLakeFormat("ndjson", &f));
  EXPECT_EQ(f, LakeFormat::kJsonl);
  EXPECT_TRUE(ParseLakeFormat("avcol", &f));
  EXPECT_EQ(f, LakeFormat::kAvcol);
  EXPECT_TRUE(ParseLakeFormat("auto", &f));
  EXPECT_EQ(f, LakeFormat::kAuto);
  EXPECT_FALSE(ParseLakeFormat("parquet", &f));
  EXPECT_STREQ(LakeFormatName(LakeFormat::kCsvGz), "csv.gz");
  EXPECT_STREQ(LakeFormatName(LakeFormat::kAvcol), "avcol");
}

TEST(LakeFormatTest, TableNameStripsFormatExtensions) {
  EXPECT_EQ(LakeTableName("orders.csv"), "orders");
  EXPECT_EQ(LakeTableName("orders.csv.gz"), "orders");
  EXPECT_EQ(LakeTableName("orders.jsonl"), "orders");
  EXPECT_EQ(LakeTableName("orders.ndjson"), "orders");
  EXPECT_EQ(LakeTableName("orders.avcol"), "orders");
  // Only format extensions strip; inner dots are part of the name.
  EXPECT_EQ(LakeTableName("a.b.csv"), "a.b");
  EXPECT_EQ(LakeTableName("README.md"), "README.md");
}

TEST(LakeFormatTest, RegistryCoversEveryConcreteFormat) {
  for (LakeFormat f : {LakeFormat::kCsv, LakeFormat::kCsvGz,
                       LakeFormat::kJsonl, LakeFormat::kAvcol}) {
    const LakeFormatHandler* h = FindLakeFormatHandler(f);
    ASSERT_NE(h, nullptr) << LakeFormatName(f);
    EXPECT_EQ(h->format, f);
    EXPECT_STREQ(h->name, LakeFormatName(f));
  }
  EXPECT_EQ(FindLakeFormatHandler(LakeFormat::kAuto), nullptr);
}

TEST(LakeFormatTest, DetectByExtensionAndMagic) {
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  const std::string csv = dir->File("t.csv");
  WriteRawFile(csv, "a,b\n1,2\n");
  auto det = DetectLakeFormat(csv);
  ASSERT_TRUE(det.ok());
  EXPECT_EQ(*det, LakeFormat::kCsv);

  Table t;
  t.name = "t";
  t.columns.push_back(MakeCol("t", "a", {"1"}));
  const std::string avcol = dir->File("t.avcol");
  ASSERT_TRUE(WriteTableAvcol(t, avcol).ok());
  det = DetectLakeFormat(avcol);
  ASSERT_TRUE(det.ok());
  EXPECT_EQ(*det, LakeFormat::kAvcol);

  if (GzipSupported()) {
    // Content wins over the extension: a gzip container named .csv is
    // detected (and read) as gzip CSV.
    auto gz = GzipCompress("a,b\n1,2\n");
    ASSERT_TRUE(gz.ok());
    const std::string disguised = dir->File("disguised.csv");
    WriteRawFile(disguised, *gz);
    det = DetectLakeFormat(disguised);
    ASSERT_TRUE(det.ok());
    EXPECT_EQ(*det, LakeFormat::kCsvGz);
  }

  const std::string readme = dir->File("README.md");
  WriteRawFile(readme, "# not lake data\n");
  EXPECT_EQ(DetectLakeFormat(readme).status().code(),
            StatusCode::kNotSupported);
}

TEST(LakeFormatTest, ListLakeFilesOrdersByTableNameAndSkipsStrays) {
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  WriteRawFile(dir->File("b.csv"), "x\n1\n");
  WriteRawFile(dir->File("a.jsonl"), "{\"x\":\"1\"}\n");
  WriteRawFile(dir->File("README.md"), "ignored\n");
  Table t;
  t.name = "c";
  t.columns.push_back(MakeCol("c", "x", {"1"}));
  ASSERT_TRUE(WriteTableAvcol(t, dir->File("c.avcol")).ok());

  auto files = ListLakeFiles(dir->path(), LakeFormat::kAuto);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 3u);
  EXPECT_EQ((*files)[0].table_name, "a");
  EXPECT_EQ((*files)[0].format, LakeFormat::kJsonl);
  EXPECT_EQ((*files)[1].table_name, "b");
  EXPECT_EQ((*files)[1].format, LakeFormat::kCsv);
  EXPECT_EQ((*files)[2].table_name, "c");
  EXPECT_EQ((*files)[2].format, LakeFormat::kAvcol);

  // Forcing a format narrows the listing to that format's files.
  auto only_csv = ListLakeFiles(dir->path(), LakeFormat::kCsv);
  ASSERT_TRUE(only_csv.ok());
  ASSERT_EQ(only_csv->size(), 1u);
  EXPECT_EQ((*only_csv)[0].table_name, "b");

  EXPECT_EQ(ListLakeFiles(dir->File("missing"), LakeFormat::kAuto)
                .status()
                .code(),
            StatusCode::kNotFound);
}

// --------------------------------------------------------------- jsonl

TEST(JsonlTest, FlattensNestedObjectsToDottedPaths) {
  const std::string doc =
      "{\"id\":\"7\",\"user\":{\"name\":\"ada\",\"geo\":{\"lat\":1.5}}}\n"
      "{\"id\":\"8\",\"user\":{\"name\":\"bob\",\"geo\":{\"lat\":-2}}}\n";
  auto table = TableFromJsonl("t", doc);
  ASSERT_TRUE(table.ok()) << table.status().message();
  ASSERT_EQ(table->columns.size(), 3u);
  EXPECT_EQ(table->columns[0].name, "id");
  EXPECT_EQ(table->columns[1].name, "user.name");
  EXPECT_EQ(table->columns[2].name, "user.geo.lat");
  EXPECT_EQ(table->columns[2].values,
            (std::vector<std::string>{"1.5", "-2"}));
}

TEST(JsonlTest, ScalarConventions) {
  // Numbers keep their raw token text, null maps to "", booleans are
  // literal, arrays keep raw JSON text, missing paths pad with "".
  const std::string doc =
      "{\"n\":007e2,\"b\":true,\"z\":null,\"a\":[1, \"x\"]}\n"
      "{\"n\":1.50,\"b\":false,\"z\":\"ok\",\"extra\":\"e\"}\n";
  auto table = TableFromJsonl("t", doc);
  ASSERT_TRUE(table.ok()) << table.status().message();
  ASSERT_EQ(table->columns.size(), 5u);
  EXPECT_EQ(table->columns[0].values,
            (std::vector<std::string>{"007e2", "1.50"}));
  EXPECT_EQ(table->columns[1].values,
            (std::vector<std::string>{"true", "false"}));
  EXPECT_EQ(table->columns[2].values, (std::vector<std::string>{"", "ok"}));
  EXPECT_EQ(table->columns[3].values,
            (std::vector<std::string>{"[1, \"x\"]", ""}));
  EXPECT_EQ(table->columns[4].values, (std::vector<std::string>{"", "e"}));
}

TEST(JsonlTest, StringEscapesAndSurrogatePairs) {
  const std::string doc =
      "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"u\":\"\\u00e9\\ud83d\\ude00\"}\n";
  auto table = TableFromJsonl("t", doc);
  ASSERT_TRUE(table.ok()) << table.status().message();
  EXPECT_EQ(table->columns[0].values[0], "a\"b\\c\n\t");
  EXPECT_EQ(table->columns[1].values[0], "\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonlTest, DuplicatePathResolvesLastWins) {
  auto table =
      TableFromJsonl("t", "{\"a\":{\"b\":\"x\"},\"a.b\":\"y\"}\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->columns.size(), 1u);
  EXPECT_EQ(table->columns[0].name, "a.b");
  EXPECT_EQ(table->columns[0].values[0], "y");
}

TEST(JsonlTest, MalformedLineReportsLineNumber) {
  auto table = TableFromJsonl("orders", "{\"a\":\"1\"}\n{broken\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kCorruption);
  EXPECT_NE(table.status().message().find("line 2"), std::string::npos)
      << table.status().message();
  EXPECT_NE(table.status().message().find("orders"), std::string::npos);

  EXPECT_FALSE(TableFromJsonl("t", "[1,2]\n").ok());   // not an object
  EXPECT_FALSE(TableFromJsonl("t", "\"str\"\n").ok());
  EXPECT_FALSE(TableFromJsonl("t", "{\"u\":\"\\ud83d\"}\n").ok());
}

TEST(JsonlTest, RoundTripsArbitraryTables) {
  Table t;
  t.name = "rt";
  t.columns.push_back(
      MakeCol("rt", "plain", {"a", "", "line\nbreak", "\"quoted\""}));
  t.columns.push_back(MakeCol("rt", "dotted.path", {"1", "2", "3", "4"}));
  t.columns.push_back(MakeCol("rt", "utf8", {"\xc3\xa9", "x", "\x01", "z"}));
  auto back = TableFromJsonl("rt", TableToJsonl(t));
  ASSERT_TRUE(back.ok()) << back.status().message();
  ASSERT_EQ(back->columns.size(), t.columns.size());
  for (size_t i = 0; i < t.columns.size(); ++i) {
    EXPECT_EQ(back->columns[i].name, t.columns[i].name);
    EXPECT_EQ(back->columns[i].values, t.columns[i].values);
  }
}

// --------------------------------------------------------------- avcol

TEST(AvcolTest, RoundTripsArbitraryTables) {
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  Table t;
  t.name = "rt";
  t.columns.push_back(MakeCol("rt", "a", {"", "x,y", "line\nbreak", "\"q\""}));
  t.columns.push_back(MakeCol("rt", "b", {"1", "2", "3", std::string(1, '\0')}));
  const std::string path = dir->File("rt.avcol");
  ASSERT_TRUE(WriteTableAvcol(t, path).ok());
  auto back = ReadTableAvcol("rt", path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ASSERT_EQ(back->columns.size(), 2u);
  for (size_t i = 0; i < t.columns.size(); ++i) {
    EXPECT_EQ(back->columns[i].name, t.columns[i].name);
    EXPECT_EQ(back->columns[i].values, t.columns[i].values);
  }

  Table empty;
  empty.name = "empty";
  const std::string epath = dir->File("empty.avcol");
  ASSERT_TRUE(WriteTableAvcol(empty, epath).ok());
  auto eback = ReadTableAvcol("empty", epath);
  ASSERT_TRUE(eback.ok());
  EXPECT_TRUE(eback->columns.empty());
}

TEST(AvcolTest, RejectsCorruptionEverywhere) {
  Table t;
  t.name = "c";
  t.columns.push_back(MakeCol("c", "a", {"12", "345"}));
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->File("c.avcol");
  ASSERT_TRUE(WriteTableAvcol(t, path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());

  // Every single-byte flip must be rejected (the trailer checksum covers
  // the whole payload; the trailer itself is structurally verified).
  for (size_t i = 0; i < bytes->size(); ++i) {
    std::string mutated = *bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    EXPECT_FALSE(TableFromAvcolBuffer("c", mutated).ok()) << "byte " << i;
  }
  // Truncation at every prefix length.
  for (size_t len = 0; len < bytes->size(); ++len) {
    EXPECT_FALSE(
        TableFromAvcolBuffer("c", std::string_view(*bytes).substr(0, len))
            .ok())
        << "len " << len;
  }
}

// ---------------------------------------------------------------- gzip

TEST(GzipTest, CompressDecompressRoundTrip) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  std::string doc;
  for (int i = 0; i < 1000; ++i) doc += "row," + std::to_string(i) + "\n";
  auto gz = GzipCompress(doc);
  ASSERT_TRUE(gz.ok());
  EXPECT_LT(gz->size(), doc.size());
  auto back = GzipDecompress(*gz);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, doc);

  EXPECT_EQ(GzipDecompress("not gzip at all").status().code(),
            StatusCode::kCorruption);
  // Truncated container: valid header, missing tail.
  EXPECT_FALSE(GzipDecompress(std::string_view(*gz).substr(0, gz->size() / 2))
                   .ok());
}

TEST(GzipTest, StreamsConcatenatedMembers) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  auto a = GzipCompress("a,b\n1,2\n");
  auto b = GzipCompress("3,4\n");
  ASSERT_TRUE(a.ok() && b.ok());
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->File("t.csv.gz");
  WriteRawFile(path, *a + *b);  // gunzip semantics: members concatenate
  auto src = OpenGzipFile(path);
  ASSERT_TRUE(src.ok());
  auto table = TableFromCsvSource("t", **src);
  ASSERT_TRUE(table.ok()) << table.status().message();
  ASSERT_EQ(table->columns.size(), 2u);
  EXPECT_EQ(table->columns[0].values, (std::vector<std::string>{"1", "3"}));
  EXPECT_EQ(table->columns[1].values, (std::vector<std::string>{"2", "4"}));
}

// --------------------------------------- CSV edge cases, plain == gzip

// Every edge-case document must load identically through the plain-CSV
// and gzip-CSV registry handlers: same table or same error. The gzip
// reader is the same parser behind a decompressing ByteSource, and this
// suite is what keeps that true.
class CsvParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CsvParityTest, PlainAndGzipReadersAgree) {
  const std::string doc = GetParam();
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  const std::string plain_path = dir->File("t.csv");
  WriteRawFile(plain_path, doc);
  auto plain = LoadLakeTable({plain_path, "t", LakeFormat::kCsv});

  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  auto gz = GzipCompress(doc);
  ASSERT_TRUE(gz.ok());
  const std::string gz_path = dir->File("t.csv.gz");
  WriteRawFile(gz_path, *gz);
  auto zipped = LoadLakeTable({gz_path, "t", LakeFormat::kCsvGz});

  ASSERT_EQ(plain.ok(), zipped.ok()) << doc;
  if (!plain.ok()) {
    // Identical failure, not merely failure: same code and same message up
    // to the per-file path context the loaders append.
    EXPECT_EQ(plain.status().code(), zipped.status().code());
    const auto strip_path = [](const std::string& m) {
      return m.substr(0, m.find(" ("));
    };
    EXPECT_EQ(strip_path(plain.status().message()),
              strip_path(zipped.status().message()));
    return;
  }
  ASSERT_EQ(plain->columns.size(), zipped->columns.size());
  for (size_t i = 0; i < plain->columns.size(); ++i) {
    EXPECT_EQ(plain->columns[i].name, zipped->columns[i].name);
    EXPECT_EQ(plain->columns[i].values, zipped->columns[i].values);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, CsvParityTest,
    ::testing::Values(
        // CRLF line endings, with and without a trailing newline.
        "a,b\r\n1,2\r\n3,4\r\n",
        "a,b\r\n1,2",
        // Quoted separators, "" escapes, embedded newlines.
        "name,note\n\"x,y\",\"he said \"\"hi\"\"\"\n\"multi\nline\",z\n",
        // UTF-8 BOM before the header.
        "\xef\xbb\xbfid,v\n1,2\n",
        // Ragged rows: short rows pad with "", long rows keep the header
        // width... and the extra field is dropped.
        "a,b,c\n1\n2,3,4,5\n",
        // Empty file and a header-only file.
        "",
        "only,header\n",
        // Unterminated quote: both readers must fail identically.
        "a,b\n\"open,2\n"));

// ----------------------------------------------------------- residency

TEST(ResidencyTest, CsvStreamingNeverSlurpsTheFile) {
  // A ~6 MB single-table CSV must parse with the high-water mark bounded
  // by the longest row, not the file: the regression this pins is the old
  // rdbuf() slurp, where peak residency equaled the file size.
  auto dir = ScopedTempDir::Create();
  ASSERT_TRUE(dir.ok());
  std::string doc = "id,payload\n";
  for (int i = 0; i < 60000; ++i) {
    doc += std::to_string(i) + "," + std::string(80, 'x') + "\n";
  }
  ASSERT_GT(doc.size(), 4u << 20);
  const std::string path = dir->File("big.csv");
  WriteRawFile(path, doc);

  auto src = FileByteSource::Open(path);
  ASSERT_TRUE(src.ok());
  CsvStreamStats stats;
  auto table = TableFromCsvSource("big", **src, ',', &stats);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(stats.bytes_read, doc.size());
  // Bound: one 64 KiB read block + a row, far below the document.
  EXPECT_LT(stats.peak_buffered_bytes, 256u << 10)
      << "CSV loading buffered a whole file again";

  // The same bound holds end-to-end through the directory reader.
  auto reader = LakeDirColumnReader::Open(dir->path());
  ASSERT_TRUE(reader.ok());
  size_t columns = 0;
  while (true) {
    auto chunk = reader->NextChunk(16);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    columns += chunk->size();
  }
  EXPECT_EQ(columns, 2u);
  EXPECT_LT(reader->peak_csv_buffered_bytes(), 256u << 10);
}

// ------------------------------------------- cross-format byte identity

// The tentpole contract: the same logical lake encoded as plain CSV, gzip
// CSV, JSONL, and AVCOL1 produces byte-identical saved indexes, through
// the in-memory path AND the spill path. The constants match
// IndexerTest golden-index case (EnterpriseLakeConfig(60, 7)), so
// format-loading is pinned to the generated-corpus baseline too.
TEST(CrossFormatGoldenTest, FourEncodingsOneIndex) {
  const Corpus lake = GenerateLake(EnterpriseLakeConfig(60, 7));
  constexpr size_t kGoldenSize = 4010044;
  constexpr uint64_t kGoldenHash = 0x26c4d420d40eb4a0ULL;

  for (LakeFormat format : {LakeFormat::kCsv, LakeFormat::kCsvGz,
                            LakeFormat::kJsonl, LakeFormat::kAvcol}) {
    if (format == LakeFormat::kCsvGz && !GzipSupported()) continue;
    SCOPED_TRACE(LakeFormatName(format));
    auto dir = ScopedTempDir::Create();
    ASSERT_TRUE(dir.ok());
    ASSERT_TRUE(SaveLakeToDir(lake, dir->path(), format).ok());

    for (const size_t budget : {size_t{0}, size_t{1} << 20}) {
      SCOPED_TRACE(budget == 0 ? "in-memory" : "spill");
      IndexerConfig cfg;
      cfg.num_threads = 2;
      cfg.lake_format = format;
      cfg.build.memory_budget_bytes = budget;
      auto built = BuildIndexFromDir(dir->path(), cfg);
      ASSERT_TRUE(built.ok()) << built.status().message();

      auto out = ScopedTempDir::Create();
      ASSERT_TRUE(out.ok());
      const std::string path = out->File("golden.idx");
      ASSERT_TRUE(built->Save(path).ok());
      auto file = ReadFileToString(path);
      ASSERT_TRUE(file.ok());
      auto payload_len = VerifyTrailer(*file);
      ASSERT_TRUE(payload_len.ok());
      const std::string_view payload(file->data(), *payload_len);
      EXPECT_EQ(payload.size(), kGoldenSize);
      EXPECT_EQ(PolyHash64(payload), kGoldenHash);
    }
  }
}

// Mixed-format directories stream in logical-table-name order, so even a
// lake where every table uses a different encoding chunks identically.
TEST(CrossFormatGoldenTest, MixedFormatDirectoryMatchesPureCsv) {
  const Corpus lake = testutil::SmallLake(40, 9);
  auto csv_dir = ScopedTempDir::Create();
  auto mixed_dir = ScopedTempDir::Create();
  ASSERT_TRUE(csv_dir.ok() && mixed_dir.ok());
  ASSERT_TRUE(SaveLakeToDir(lake, csv_dir->path(), LakeFormat::kCsv).ok());

  const LakeFormat cycle[] = {LakeFormat::kCsv, LakeFormat::kJsonl,
                              LakeFormat::kAvcol, LakeFormat::kCsvGz};
  for (size_t i = 0; i < lake.tables().size(); ++i) {
    LakeFormat f = cycle[i % 4];
    if (f == LakeFormat::kCsvGz && !GzipSupported()) f = LakeFormat::kCsv;
    const LakeFormatHandler* h = FindLakeFormatHandler(f);
    ASSERT_NE(h, nullptr);
    const Table& t = lake.tables()[i];
    ASSERT_TRUE(
        h->save(t, mixed_dir->File(t.name + h->extension)).ok());
  }

  IndexerConfig cfg;
  cfg.num_threads = 2;
  auto pure = BuildIndexFromDir(csv_dir->path(), cfg);
  auto mixed = BuildIndexFromDir(mixed_dir->path(), cfg);
  ASSERT_TRUE(pure.ok() && mixed.ok());
  auto out = ScopedTempDir::Create();
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(pure->Save(out->File("pure.idx")).ok());
  ASSERT_TRUE(mixed->Save(out->File("mixed.idx")).ok());
  auto pure_bytes = ReadFileToString(out->File("pure.idx"));
  auto mixed_bytes = ReadFileToString(out->File("mixed.idx"));
  ASSERT_TRUE(pure_bytes.ok() && mixed_bytes.ok());
  EXPECT_EQ(*pure_bytes, *mixed_bytes);
}

}  // namespace
}  // namespace av
