#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/kaggle_sim.h"
#include "ml/metrics.h"

namespace av {
namespace {

TEST(MetricsTest, R2KnownValues) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_NEAR(R2Score({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
  EXPECT_LT(R2Score({1, 2, 3}, {3, 2, 1}), 0.0);
  EXPECT_DOUBLE_EQ(R2Score({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(R2Score({1, 1}, {1, 1}), 0.0);  // zero variance guard
}

TEST(MetricsTest, AveragePrecisionKnownValues) {
  // Perfect ranking.
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 1, 0, 0}, {0.9, 0.8, 0.2, 0.1}), 1.0);
  // Worst ranking of one positive among four.
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 0, 0, 0}, {0.1, 0.5, 0.6, 0.7}),
                   0.25);
  EXPECT_DOUBLE_EQ(AveragePrecision({0, 0}, {0.5, 0.6}), 0.0);
}

TEST(EncoderTest, TargetEncodingSeparatesCategories) {
  Dataset d;
  Feature f;
  f.name = "cat";
  f.categorical = true;
  for (int i = 0; i < 200; ++i) {
    f.cat_values.push_back(i % 2 ? "hi" : "lo");
    d.labels.push_back(i % 2 ? 1.0 : 0.0);
  }
  d.features.push_back(f);
  const auto enc = CategoricalEncoder::Fit(d);
  const auto x = enc.Transform(d);
  EXPECT_GT(x[1][0], x[0][0]);  // "hi" encodes higher than "lo"

  // Unseen value falls back to the global mean.
  Dataset unseen = d;
  unseen.features[0].cat_values.assign(200, "other");
  const auto xu = enc.Transform(unseen);
  EXPECT_NEAR(xu[0][0], 0.5, 1e-9);
}

TEST(GbdtTest, LearnsSimpleRegression) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.NextDouble(), b = rng.NextDouble();
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 0.05 * rng.NextGaussian());
  }
  Gbdt model;
  GbdtConfig cfg;
  model.Train(x, y, cfg);
  EXPECT_EQ(model.num_trees(), cfg.num_trees);
  const auto pred = model.Predict(x);
  EXPECT_GT(R2Score(y, pred), 0.85);
}

TEST(GbdtTest, LearnsClassification) {
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.NextDouble();
    x.push_back({a});
    y.push_back(a > 0.5 ? 1.0 : 0.0);
  }
  Gbdt model;
  GbdtConfig cfg;
  cfg.classification = true;
  model.Train(x, y, cfg);
  const auto pred = model.Predict(x);
  for (double p : pred) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_GT(AveragePrecision(y, pred), 0.95);
}

TEST(GbdtTest, DegenerateInputs) {
  Gbdt model;
  GbdtConfig cfg;
  model.Train({}, {}, cfg);
  EXPECT_TRUE(model.Predict({}).empty());
  // Constant labels: prediction equals the constant.
  std::vector<std::vector<double>> x(50, {1.0});
  std::vector<double> y(50, 7.0);
  model.Train(x, y, cfg);
  EXPECT_NEAR(model.Predict({{1.0}})[0], 7.0, 1e-6);
}

TEST(KaggleSimTest, BuildsElevenNamedTasks) {
  const auto tasks = MakeKaggleTasks();
  ASSERT_EQ(tasks.size(), 11u);
  size_t classification = 0, undetectable = 0;
  for (const auto& t : tasks) {
    if (t.classification) ++classification;
    if (!t.swap_detectable) ++undetectable;
    EXPECT_EQ(t.train.num_features(), 5u);
    EXPECT_GT(t.train.num_rows(), 1000u);
    EXPECT_GT(t.test.num_rows(), 500u);
  }
  EXPECT_EQ(classification, 7u);  // 7 classification + 4 regression
  EXPECT_EQ(undetectable, 3u);    // WestNile, HomeDepot, WalmartTrips
}

TEST(KaggleSimTest, SchemaDriftSwapsColumns) {
  const auto tasks = MakeKaggleTasks();
  const KaggleTask& t = tasks[0];
  const Dataset drifted = WithSchemaDrift(t);
  EXPECT_EQ(drifted.features[t.swap_a].cat_values,
            t.test.features[t.swap_b].cat_values);
  EXPECT_EQ(drifted.features[t.swap_b].cat_values,
            t.test.features[t.swap_a].cat_values);
  EXPECT_EQ(drifted.labels, t.test.labels);
}

TEST(KaggleSimTest, DriftDegradesModelQuality) {
  // The Figure-15 effect, on one classification and one regression task.
  const auto tasks = MakeKaggleTasks();
  for (size_t idx : {size_t{0}, size_t{7}}) {
    const KaggleTask& t = tasks[idx];
    const double clean = TrainAndScore(t, t.test);
    const double drifted = TrainAndScore(t, WithSchemaDrift(t));
    EXPECT_GT(clean, 0.5) << t.name;
    EXPECT_LT(drifted, clean * 0.9)
        << t.name << ": drift should visibly degrade quality";
  }
}

}  // namespace
}  // namespace av
