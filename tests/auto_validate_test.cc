#include "core/auto_validate.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lakegen/domains.h"
#include "pattern/matcher.h"
#include "tests/test_util.h"

namespace av {
namespace {

class AutoValidateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Deterministic per-domain coverage (the Zipf lake is exercised in the
    // integration tests; here we need every queried domain well-supported).
    corpus_ = new Corpus(testutil::DomainsCorpus({
        {"ipv4", 25},
        {"locale_lower", 20},
        {"iso_date", 25},
        {"date_mdy_text", 25},
        {"guid", 20},
        {"time_hms", 20},
        {"status_enum", 20},
        {"kv_id", 20},
        {"kv_status", 20},
        {"kv_node", 20},
        {"kv_score", 20},
        {"kv_epoch", 20},
        {"composite_kv_wide", 10},
        {"nl_phrase", 15},
    }));
    index_ = new PatternIndex(testutil::BuildTestIndex(*corpus_));
    AutoValidateOptions opts;
    opts.min_coverage = 5;
    opts.fpr_target = 0.1;
    engine_ = new AutoValidate(index_, opts);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete index_;
    delete corpus_;
  }

  static std::vector<std::string> DomainColumn(const std::string& name,
                                               size_t rows, uint64_t seed) {
    for (const auto& d : EnterpriseDomains()) {
      if (d.name != name) continue;
      Rng rng(seed);
      RowGen gen = d.make_column(rng);
      std::vector<std::string> values;
      for (size_t i = 0; i < rows; ++i) values.push_back(gen(rng));
      return values;
    }
    ADD_FAILURE() << "unknown domain " << name;
    return {};
  }

  static Corpus* corpus_;
  static PatternIndex* index_;
  static AutoValidate* engine_;
};

Corpus* AutoValidateTest::corpus_ = nullptr;
PatternIndex* AutoValidateTest::index_ = nullptr;
AutoValidate* AutoValidateTest::engine_ = nullptr;

TEST_F(AutoValidateTest, TrainAndValidateCleanDomain) {
  const auto train = DomainColumn("ipv4", 60, 1);
  auto rule = engine_->Train(train, Method::kFmdv);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->pattern.ToString(), "<digit>+.<digit>+.<digit>+.<digit>+");

  const auto future = DomainColumn("ipv4", 200, 2);
  const auto report = engine_->Validate(*rule, future);
  EXPECT_FALSE(report.flagged);

  const auto drifted = DomainColumn("locale_lower", 200, 3);
  const auto drift_report = engine_->Validate(*rule, drifted);
  EXPECT_TRUE(drift_report.flagged);
}

TEST_F(AutoValidateTest, FmdvHToleratesDirtyTraining) {
  auto train = DomainColumn("iso_date", 95, 4);
  for (int i = 0; i < 5; ++i) train.push_back("N/A");

  // Basic FMDV must fail on the dirty column...
  auto basic = engine_->Train(train, Method::kFmdv);
  EXPECT_FALSE(basic.ok());

  // ...while FMDV-H cuts the non-conforming 5%.
  auto rule = engine_->Train(train, Method::kFmdvH);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->pattern.ToString(), "<digit>{4}-<digit>{2}-<digit>{2}");
  EXPECT_EQ(rule->train_nonconforming, 5u);
  EXPECT_NEAR(rule->theta_train(), 0.05, 1e-12);

  // A future batch with a similar dirt level passes; a drifted one fails.
  auto future = DomainColumn("iso_date", 190, 5);
  for (int i = 0; i < 10; ++i) future.push_back("N/A");
  EXPECT_FALSE(engine_->Validate(*rule, future).flagged);
  std::vector<std::string> broken(200, std::string("unknown"));
  EXPECT_TRUE(engine_->Validate(*rule, broken).flagged);
}

TEST_F(AutoValidateTest, FmdvVhHandlesDirtyWideColumns) {
  auto train = DomainColumn("composite_kv_wide", 57, 6);
  train.push_back("-");
  train.push_back("");
  train.push_back("null");

  auto rule = engine_->Train(train, Method::kFmdvVH);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_GE(rule->segments.size(), 2u);
  EXPECT_EQ(rule->train_nonconforming, 3u);

  const auto future = DomainColumn("composite_kv_wide", 100, 7);
  EXPECT_FALSE(engine_->Validate(*rule, future).flagged);
}

TEST_F(AutoValidateTest, MethodNamesAreStable) {
  EXPECT_STREQ(MethodName(Method::kFmdv), "FMDV");
  EXPECT_STREQ(MethodName(Method::kFmdvV), "FMDV-V");
  EXPECT_STREQ(MethodName(Method::kFmdvH), "FMDV-H");
  EXPECT_STREQ(MethodName(Method::kFmdvVH), "FMDV-VH");
  EXPECT_STREQ(HomogeneityTestName(HomogeneityTest::kFisherExact),
               "fisher-exact");
}

TEST_F(AutoValidateTest, AutoTagReturnsRestrictivePattern) {
  const auto train = DomainColumn("guid", 60, 8);
  auto tag = engine_->AutoTag(train);
  ASSERT_TRUE(tag.ok()) << tag.status().ToString();
  // The tag must describe GUIDs tightly (fixed-length segments), not loosely.
  EXPECT_EQ(tag->ToString(),
            "<alnum>{8}-<alnum>{4}-<alnum>{4}-<alnum>{4}-<alnum>{12}");
}

TEST_F(AutoValidateTest, CmdvIsAtLeastAsRestrictiveAsFmdv) {
  const auto train = DomainColumn("date_mdy_text", 60, 9);
  auto fmdv = engine_->Train(train, Method::kFmdv);
  auto cmdv = engine_->TrainCmdv(train);
  ASSERT_TRUE(fmdv.ok());
  ASSERT_TRUE(cmdv.ok());
  EXPECT_LE(cmdv->coverage, fmdv->coverage);
}

TEST_F(AutoValidateTest, NoIndexAgreesWithIndexedFmdvOnPattern) {
  // The no-index reference (Figure 14) must produce an equivalent rule for a
  // well-supported domain.
  const auto train = DomainColumn("time_hms", 50, 10);
  auto indexed = engine_->Train(train, Method::kFmdv);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  auto scan = TrainFmdvNoIndex(*corpus_, train, engine_->options());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(indexed->pattern.ToString(), scan->pattern.ToString());
}

TEST_F(AutoValidateTest, TrainOnEmptyColumnFails) {
  auto rule = engine_->Train({}, Method::kFmdvVH);
  EXPECT_FALSE(rule.ok());
}

}  // namespace
}  // namespace av
