#include "pattern/token.h"

#include <gtest/gtest.h>

namespace av {
namespace {

std::vector<std::string> Texts(std::string_view v) {
  std::vector<std::string> out;
  for (const Token& t : Tokenize(v)) out.emplace_back(TokenText(v, t));
  return out;
}

TEST(TokenizeTest, EmptyString) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_EQ(TokenCount(""), 0u);
}

TEST(TokenizeTest, PureDigits) {
  const auto tokens = Tokenize("12345");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kDigits);
  EXPECT_EQ(tokens[0].len, 5u);
}

TEST(TokenizeTest, PureLetters) {
  const auto tokens = Tokenize("Delivered");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kLetters);
}

TEST(TokenizeTest, MixedAlnumChunkIsOneToken) {
  const auto tokens = Tokenize("abc123def");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kAlnum);
  EXPECT_EQ(tokens[0].len, 9u);
}

TEST(TokenizeTest, DateTimeExample) {
  // Figure 5's value shape: chunks separated by symbols.
  const auto texts = Texts("9/12/2019 12:01:32 PM");
  const std::vector<std::string> expected = {"9",  "/", "12", "/",  "2019",
                                             " ",  "12", ":", "01", ":",
                                             "32", " ", "PM"};
  EXPECT_EQ(texts, expected);
}

TEST(TokenizeTest, EverySymbolIsItsOwnToken) {
  const auto tokens = Tokenize("a--b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].cls, TokenClass::kSymbol);
  EXPECT_EQ(tokens[2].cls, TokenClass::kSymbol);
}

TEST(TokenizeTest, TokensCoverWholeStringWithoutGaps) {
  const std::string v = "[0.1|02/18/2015 00:00:00|OnBooking]";
  const auto tokens = Tokenize(v);
  uint32_t pos = 0;
  for (const Token& t : tokens) {
    EXPECT_EQ(t.begin, pos);
    pos += t.len;
  }
  EXPECT_EQ(pos, v.size());
}

TEST(TokenizeTest, NonAsciiBytesFormOtherRuns) {
  const std::string v = "a\xc3\xa9z";  // 'a', UTF-8 e-acute, 'z'
  const auto tokens = Tokenize(v);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kLetters);
  EXPECT_EQ(tokens[1].cls, TokenClass::kOther);
  EXPECT_EQ(tokens[1].len, 2u);
  EXPECT_EQ(tokens[2].cls, TokenClass::kLetters);
}

TEST(TokenizeTest, ControlBytesAreSymbols) {
  const std::string v = "a\tb\x01";
  const auto tokens = Tokenize(v);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].cls, TokenClass::kSymbol);
  EXPECT_EQ(tokens[3].cls, TokenClass::kSymbol);
}

TEST(ShapeKeyTest, SameSkeletonSameKey) {
  auto key = [](std::string_view v) { return ShapeKey(v, Tokenize(v)); };
  // Chunk classes are wildcarded: digit and hex chunks align.
  EXPECT_EQ(key("1234-ab12"), key("abcd-9999"));
  // Symbols are not wildcarded.
  EXPECT_NE(key("1234-ab12"), key("1234/ab12"));
  // Token counts differ.
  EXPECT_NE(key("a b"), key("a b c"));
}

TEST(ShapeKeyTest, GuidRowsShareShape) {
  auto key = [](std::string_view v) { return ShapeKey(v, Tokenize(v)); };
  EXPECT_EQ(key("3f2504e0-4f89-11d3-9a0c-0305e82c3301"),
            key("12345678-1234-1234-1234-123456789012"));
}

TEST(TokenizeTest, FuzzNeverCrashesAndCovers) {
  // Deterministic byte soup; the lexer must cover any input exactly.
  uint64_t state = 99;
  for (int iter = 0; iter < 200; ++iter) {
    std::string v;
    const size_t len = (state >> 5) % 64;
    for (size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      v.push_back(static_cast<char>(state >> 56));
    }
    const auto tokens = Tokenize(v);
    size_t covered = 0;
    for (const Token& t : tokens) covered += t.len;
    EXPECT_EQ(covered, v.size());
  }
}

}  // namespace
}  // namespace av
