#include "pattern/token.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "common/rng.h"
#include "pattern/simd/token_simd.h"
#include "pattern/token_arena.h"

namespace av {
namespace {

/// Runs `fn` once per dispatch arm available on this machine/build, with
/// that arm forced; restores the previously active arm on scope exit. The
/// equivalence suites below run under this so every kernel — not just the
/// one the resolver would pick — is held to the reference scanner.
template <typename Fn>
void ForEachArm(const Fn& fn) {
  const simd::TokenizerArm prev = simd::TokenizerDispatch();
  for (const simd::TokenizerArm arm : simd::AvailableTokenizerArms()) {
    ASSERT_TRUE(simd::SetTokenizerArm(arm));
    fn(arm);
  }
  ASSERT_TRUE(simd::SetTokenizerArm(prev));
}

// ---------------------------------------------------------------------------
// Reference scanner: a verbatim copy of the original per-character
// branch-chain tokenizer, kept here as the specification the class-table /
// SWAR scanner must reproduce byte-for-byte.

bool RefIsAsciiDigit(unsigned char c) { return c >= '0' && c <= '9'; }
bool RefIsAsciiLetter(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool RefIsAsciiAlnum(unsigned char c) {
  return RefIsAsciiDigit(c) || RefIsAsciiLetter(c);
}

std::vector<Token> ReferenceTokenize(std::string_view value) {
  std::vector<Token> out;
  const size_t n = value.size();
  size_t i = 0;
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(value[i]);
    if (RefIsAsciiAlnum(c)) {
      size_t j = i;
      bool has_digit = false, has_letter = false;
      while (j < n && RefIsAsciiAlnum(static_cast<unsigned char>(value[j]))) {
        if (RefIsAsciiDigit(static_cast<unsigned char>(value[j]))) {
          has_digit = true;
        } else {
          has_letter = true;
        }
        ++j;
      }
      TokenClass cls = has_digit && has_letter ? TokenClass::kAlnum
                       : has_digit             ? TokenClass::kDigits
                                               : TokenClass::kLetters;
      out.push_back(Token{cls, static_cast<uint32_t>(i),
                          static_cast<uint32_t>(j - i)});
      i = j;
    } else if (c >= 0x80) {
      size_t j = i;
      while (j < n && static_cast<unsigned char>(value[j]) >= 0x80) ++j;
      out.push_back(Token{TokenClass::kOther, static_cast<uint32_t>(i),
                          static_cast<uint32_t>(j - i)});
      i = j;
    } else {
      out.push_back(Token{TokenClass::kSymbol, static_cast<uint32_t>(i), 1});
      ++i;
    }
  }
  return out;
}

void ExpectMatchesReference(std::string_view v) {
  const std::vector<Token> expect = ReferenceTokenize(v);
  ForEachArm([&](simd::TokenizerArm arm) {
    EXPECT_EQ(Tokenize(v), expect)
        << "arm: " << simd::TokenizerArmName(arm) << " value: " << v;
    EXPECT_EQ(TokenCount(v), expect.size())
        << "arm: " << simd::TokenizerArmName(arm) << " value: " << v;
    std::vector<Token> into = {Token{TokenClass::kSymbol, 9, 9}};  // stale
    TokenizeInto(v, &into);
    EXPECT_EQ(into, expect)
        << "arm: " << simd::TokenizerArmName(arm) << " value: " << v;
  });
}

std::vector<std::string> Texts(std::string_view v) {
  std::vector<std::string> out;
  for (const Token& t : Tokenize(v)) out.emplace_back(TokenText(v, t));
  return out;
}

TEST(TokenizeTest, EmptyString) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_EQ(TokenCount(""), 0u);
}

TEST(TokenizeTest, PureDigits) {
  const auto tokens = Tokenize("12345");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kDigits);
  EXPECT_EQ(tokens[0].len, 5u);
}

TEST(TokenizeTest, PureLetters) {
  const auto tokens = Tokenize("Delivered");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kLetters);
}

TEST(TokenizeTest, MixedAlnumChunkIsOneToken) {
  const auto tokens = Tokenize("abc123def");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kAlnum);
  EXPECT_EQ(tokens[0].len, 9u);
}

TEST(TokenizeTest, DateTimeExample) {
  // Figure 5's value shape: chunks separated by symbols.
  const auto texts = Texts("9/12/2019 12:01:32 PM");
  const std::vector<std::string> expected = {"9",  "/", "12", "/",  "2019",
                                             " ",  "12", ":", "01", ":",
                                             "32", " ", "PM"};
  EXPECT_EQ(texts, expected);
}

TEST(TokenizeTest, EverySymbolIsItsOwnToken) {
  const auto tokens = Tokenize("a--b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].cls, TokenClass::kSymbol);
  EXPECT_EQ(tokens[2].cls, TokenClass::kSymbol);
}

TEST(TokenizeTest, TokensCoverWholeStringWithoutGaps) {
  const std::string v = "[0.1|02/18/2015 00:00:00|OnBooking]";
  const auto tokens = Tokenize(v);
  uint32_t pos = 0;
  for (const Token& t : tokens) {
    EXPECT_EQ(t.begin, pos);
    pos += t.len;
  }
  EXPECT_EQ(pos, v.size());
}

TEST(TokenizeTest, NonAsciiBytesFormOtherRuns) {
  const std::string v = "a\xc3\xa9z";  // 'a', UTF-8 e-acute, 'z'
  const auto tokens = Tokenize(v);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].cls, TokenClass::kLetters);
  EXPECT_EQ(tokens[1].cls, TokenClass::kOther);
  EXPECT_EQ(tokens[1].len, 2u);
  EXPECT_EQ(tokens[2].cls, TokenClass::kLetters);
}

TEST(TokenizeTest, ControlBytesAreSymbols) {
  const std::string v = "a\tb\x01";
  const auto tokens = Tokenize(v);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].cls, TokenClass::kSymbol);
  EXPECT_EQ(tokens[3].cls, TokenClass::kSymbol);
}

TEST(ShapeKeyTest, SameSkeletonSameKey) {
  auto key = [](std::string_view v) { return ShapeKey(v, Tokenize(v)); };
  // Chunk classes are wildcarded: digit and hex chunks align.
  EXPECT_EQ(key("1234-ab12"), key("abcd-9999"));
  // Symbols are not wildcarded.
  EXPECT_NE(key("1234-ab12"), key("1234/ab12"));
  // Token counts differ.
  EXPECT_NE(key("a b"), key("a b c"));
}

TEST(ShapeKeyTest, GuidRowsShareShape) {
  auto key = [](std::string_view v) { return ShapeKey(v, Tokenize(v)); };
  EXPECT_EQ(key("3f2504e0-4f89-11d3-9a0c-0305e82c3301"),
            key("12345678-1234-1234-1234-123456789012"));
}

TEST(TokenClassTableTest, MatchesScalarClassifier) {
  for (int c = 0; c < 256; ++c) {
    const uint8_t bits = kTokenClassTable[static_cast<unsigned char>(c)];
    if (RefIsAsciiDigit(static_cast<unsigned char>(c))) {
      EXPECT_EQ(bits, TokenClassTable::kDigit) << c;
    } else if (RefIsAsciiLetter(static_cast<unsigned char>(c))) {
      EXPECT_EQ(bits, TokenClassTable::kLetter) << c;
    } else if (c >= 0x80) {
      EXPECT_EQ(bits, TokenClassTable::kOther) << c;
    } else {
      EXPECT_EQ(bits, 0) << c;  // symbol
    }
  }
}

TEST(TokenizeEquivalenceTest, HandPickedBoundaryValues) {
  const std::vector<std::string> values = {
      "",
      "a",
      "\x7f",                       // last ASCII byte: symbol
      "\x80",                       // first non-ASCII byte: other
      "a\x7f\x80z",                 // boundary sandwich
      std::string(1, '\0'),         // NUL is a symbol
      "9/12/2019 12:01:32 PM",
      "abcdefghijklmnopqrstuvwxyz0123456789",  // long alnum run (SWAR path)
      "ABCDEFG-1234567890123456789012345678901234567890",
      std::string(64, 'x'),
      std::string(64, '7'),
      std::string(64, '\xc3'),      // long non-ASCII run (SWAR path)
      "caf\xc3\xa9 cr\xc3\xa8me",   // UTF-8 mixed with ASCII
      "abcdefg\x80hijklmn",         // non-ASCII byte mid-word
      "abcdefgh\tij",               // symbol exactly at word boundary
      "1234567\x41zzzzzzzz",        // digit run turning alnum at byte 8
  };
  for (const std::string& v : values) ExpectMatchesReference(v);
}

TEST(TokenizeEquivalenceTest, RandomizedPropertyAllByteMixes) {
  // Three generators stress different run structures: raw byte soup, ASCII
  // with long alnum stretches, and UTF-8-ish text with multi-byte runs.
  Rng rng(20260731);
  for (int iter = 0; iter < 3000; ++iter) {
    const size_t len = rng.Below(97);
    std::string v;
    v.reserve(len);
    const int mode = static_cast<int>(rng.Below(3));
    for (size_t i = 0; i < len; ++i) {
      switch (mode) {
        case 0:  // uniform bytes, all 256 values
          v.push_back(static_cast<char>(rng.Below(256)));
          break;
        case 1: {  // alnum-heavy ASCII with occasional symbols
          const uint64_t r = rng.Below(20);
          if (r < 9) {
            v.push_back(static_cast<char>('a' + rng.Below(26)));
          } else if (r < 17) {
            v.push_back(static_cast<char>('0' + rng.Below(10)));
          } else {
            v.push_back(static_cast<char>(rng.Below(0x80)));
          }
          break;
        }
        default: {  // UTF-8-ish: continuation-range bytes in runs
          if (rng.Below(3) == 0) {
            v.push_back(static_cast<char>(0x80 + rng.Below(0x80)));
          } else {
            v.push_back(static_cast<char>(rng.Below(0x80)));
          }
          break;
        }
      }
    }
    ExpectMatchesReference(v);
  }
}

TEST(TokenArenaTest, PacksRunsContiguouslyAndMatchesTokenize) {
  TokenArena arena;
  const std::vector<std::string> values = {"a-1", "", "caf\xc3\xa9", "2019"};
  for (const std::string& v : values) ASSERT_TRUE(arena.Add(v));
  ASSERT_EQ(arena.size(), values.size());
  size_t total = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    const auto span = arena.tokens(i);
    const std::vector<Token> expect = Tokenize(values[i]);
    EXPECT_EQ(std::vector<Token>(span.begin(), span.end()), expect);
    EXPECT_EQ(arena.token_count(i), expect.size());
    total += expect.size();
  }
  EXPECT_EQ(arena.total_tokens(), total);
  arena.Clear();
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.total_tokens(), 0u);
}

// The marker re-encode regression: adversarial values whose symbol tokens
// are the literal marker bytes \x01-\x04 must never merge two different
// skeletons into one shape key. Brute-forces every value up to length 4
// over an alphabet of chunk bytes, marker bytes, an ordinary symbol and a
// non-ASCII byte, and checks ShapeKey is injective on skeletons.
TEST(ShapeKeyTest, AdversarialControlBytesNeverCollide) {
  const std::string alphabet = {'a',    '1',    '\x01', '\x02',
                                '\x03', '\x04', '-',    static_cast<char>(0x80)};
  // Canonical (unambiguous) skeleton spelling for the oracle side.
  const auto skeleton = [](std::string_view v) {
    std::string s;
    for (const Token& t : Tokenize(v)) {
      if (IsChunk(t.cls)) {
        s += "[C]";
      } else if (t.cls == TokenClass::kOther) {
        s += "[O]";
      } else {
        s += "[S";
        s += std::to_string(static_cast<unsigned char>(v[t.begin]));
        s += "]";
      }
    }
    return s;
  };
  std::map<std::string, std::string> key_to_skeleton;
  std::vector<std::string> frontier = {""};
  size_t checked = 0;
  for (int len = 1; len <= 4; ++len) {
    std::vector<std::string> next;
    for (const std::string& prev : frontier) {
      for (const char c : alphabet) next.push_back(prev + c);
    }
    for (const std::string& v : next) {
      const std::string key = ShapeKey(v, Tokenize(v));
      const auto [it, inserted] = key_to_skeleton.emplace(key, skeleton(v));
      if (!inserted) {
        ASSERT_EQ(it->second, skeleton(v))
            << "ShapeKey collision between different skeletons";
      }
      ++checked;
    }
    frontier = std::move(next);
  }
  EXPECT_GT(checked, 4000u);
}

TEST(ShapeKeyTest, MarkerRangeSymbolsKeepDistinctIdentities) {
  // Symbols are not wildcards: each marker-range byte is its own skeleton.
  auto key = [](std::string_view v) { return ShapeKey(v, Tokenize(v)); };
  EXPECT_NE(key("\x01"), key("\x02"));
  EXPECT_NE(key("\x01"), key("\x03"));
  EXPECT_NE(key("\x03"), key("\x04"));
  EXPECT_NE(key("a\x01"), key("\x01"
                              "a"));
  // ... while ordinary same-skeleton values still group.
  EXPECT_EQ(key("a\x01z"), key("q\x01"
                               "7"));
}

// ---------------------------------------------------------------------------
// Kernel-level properties: every compiled block-classify and find_any4
// kernel must agree with the per-byte TokenClassTable walk on arbitrary
// blocks, including every length 1..64 (the seam/tail logic is where SIMD
// kernels rot).

TEST(SimdKernelTest, BlockClassifyMatchesScalarOnRandomBlocks) {
  Rng rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = 1 + rng.Below(64);
    std::string block;
    for (size_t i = 0; i < len; ++i) {
      // Byte soup biased toward class boundaries.
      const uint64_t r = rng.Below(4);
      block.push_back(r == 0 ? static_cast<char>(rng.Below(256))
                             : static_cast<char>("09azAZ@[`{\x7f\x80"[rng.Below(12)]));
    }
    simd::BlockMasks want;
    simd::BlockClassifyScalar(block.data(), block.size(), &want);
    for (const simd::TokenizerArm arm : simd::AvailableTokenizerArms()) {
      const simd::BlockClassifyFn classify =
          simd::SetTokenizerArm(arm)
              ? simd::ActiveTokenizerKernels().classify
              : nullptr;
      if (classify == nullptr) continue;  // scalar/SWAR arms: no block kernel
      simd::BlockMasks got;
      classify(block.data(), block.size(), &got);
      EXPECT_EQ(got.digit, want.digit) << simd::TokenizerArmName(arm);
      EXPECT_EQ(got.letter, want.letter) << simd::TokenizerArmName(arm);
      EXPECT_EQ(got.nonascii, want.nonascii) << simd::TokenizerArmName(arm);
    }
  }
  simd::SetTokenizerArm(simd::ResolveTokenizerArmFromEnv());
}

TEST(SimdKernelTest, BlockClassifyEveryLengthEveryByteClass) {
  // Exhaustive over (length, homogeneous byte): catches off-by-one tail
  // handling at every block seam.
  for (size_t len = 1; len <= 64; ++len) {
    for (const unsigned char c :
         {'0', '9', 'a', 'z', 'A', 'Z', ' ', '/', '\x7f', '\x80', '\xff'}) {
      const std::string block(len, static_cast<char>(c));
      simd::BlockMasks want;
      simd::BlockClassifyScalar(block.data(), len, &want);
      for (const simd::TokenizerArm arm : simd::AvailableTokenizerArms()) {
        ASSERT_TRUE(simd::SetTokenizerArm(arm));
        const simd::BlockClassifyFn classify =
            simd::ActiveTokenizerKernels().classify;
        if (classify == nullptr) continue;
        simd::BlockMasks got;
        classify(block.data(), len, &got);
        EXPECT_EQ(got.digit, want.digit)
            << simd::TokenizerArmName(arm) << " len=" << len << " c=" << int(c);
        EXPECT_EQ(got.letter, want.letter)
            << simd::TokenizerArmName(arm) << " len=" << len << " c=" << int(c);
        EXPECT_EQ(got.nonascii, want.nonascii)
            << simd::TokenizerArmName(arm) << " len=" << len << " c=" << int(c);
      }
    }
  }
  simd::SetTokenizerArm(simd::ResolveTokenizerArmFromEnv());
}

TEST(SimdKernelTest, FindAnyOf4AgreesAcrossArms) {
  Rng rng(777);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.Below(130);
    std::string hay;
    for (size_t i = 0; i < len; ++i) {
      hay.push_back(static_cast<char>('a' + rng.Below(8)));
    }
    unsigned char set[4];
    for (unsigned char& c : set) {
      // Mostly misses, occasionally a needle present in the haystack, and
      // sometimes duplicate needles (the single-needle calling convention).
      c = rng.Below(3) == 0 ? static_cast<unsigned char>('a' + rng.Below(8))
                            : static_cast<unsigned char>(rng.Below(256));
    }
    const size_t want = simd::FindAnyOf4Scalar(hay.data(), hay.size(), set);
    EXPECT_EQ(simd::FindAnyOf4Swar(hay.data(), hay.size(), set), want);
    for (const simd::TokenizerArm arm : simd::AvailableTokenizerArms()) {
      ASSERT_TRUE(simd::SetTokenizerArm(arm));
      EXPECT_EQ(simd::ActiveTokenizerKernels().find_any4(hay.data(),
                                                         hay.size(), set),
                want)
          << simd::TokenizerArmName(arm);
    }
  }
  simd::SetTokenizerArm(simd::ResolveTokenizerArmFromEnv());
}

// ---------------------------------------------------------------------------
// Dispatch behavior.

TEST(SimdDispatchTest, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(simd::TokenizerArmAvailable(simd::TokenizerArm::kScalar));
  EXPECT_TRUE(simd::TokenizerArmAvailable(simd::TokenizerArm::kSwar));
  const auto arms = simd::AvailableTokenizerArms();
  EXPECT_GE(arms.size(), 2u);
}

TEST(SimdDispatchTest, SetTokenizerArmSwitchesAndReportsUnavailable) {
  const simd::TokenizerArm prev = simd::TokenizerDispatch();
  for (const simd::TokenizerArm arm : simd::AvailableTokenizerArms()) {
    ASSERT_TRUE(simd::SetTokenizerArm(arm));
    EXPECT_EQ(simd::TokenizerDispatch(), arm);
    EXPECT_EQ(simd::ActiveTokenizerKernels().arm, arm);
  }
  if (!simd::TokenizerArmAvailable(simd::TokenizerArm::kAvx2)) {
    ASSERT_TRUE(simd::SetTokenizerArm(simd::TokenizerArm::kSwar));
    EXPECT_FALSE(simd::SetTokenizerArm(simd::TokenizerArm::kAvx2));
    EXPECT_EQ(simd::TokenizerDispatch(), simd::TokenizerArm::kSwar)
        << "failed SetTokenizerArm must leave the active arm unchanged";
  }
  ASSERT_TRUE(simd::SetTokenizerArm(prev));
}

TEST(SimdDispatchTest, ParseTokenizerArmVocabulary) {
  simd::TokenizerArm arm;
  ASSERT_TRUE(simd::ParseTokenizerArm("scalar", &arm));
  EXPECT_EQ(arm, simd::TokenizerArm::kScalar);
  ASSERT_TRUE(simd::ParseTokenizerArm("swar", &arm));
  EXPECT_EQ(arm, simd::TokenizerArm::kSwar);
  ASSERT_TRUE(simd::ParseTokenizerArm("sse2", &arm));
  EXPECT_EQ(arm, simd::TokenizerArm::kSse2);
  ASSERT_TRUE(simd::ParseTokenizerArm("ssse3", &arm));  // honest alias
  EXPECT_EQ(arm, simd::TokenizerArm::kSse2);
  ASSERT_TRUE(simd::ParseTokenizerArm("avx2", &arm));
  EXPECT_EQ(arm, simd::TokenizerArm::kAvx2);
  EXPECT_FALSE(simd::ParseTokenizerArm("", &arm));
  EXPECT_FALSE(simd::ParseTokenizerArm("AVX2", &arm));
  EXPECT_FALSE(simd::ParseTokenizerArm("sse4", &arm));
}

// CI's per-arm jobs run the suite as `AV_SIMD=<arm> AV_SIMD_REQUIRE=<arm>`:
// this test hard-fails the build when the resolver does not deliver the arm
// the job demanded (e.g. the kernel TU silently fell out of the build and
// dispatch became unreachable dead code). Without AV_SIMD_REQUIRE it still
// pins that the env resolver honors AV_SIMD when it names an available arm.
TEST(SimdDispatchTest, RequiredArmIsActive) {
  if (const char* req = std::getenv("AV_SIMD_REQUIRE")) {
    simd::TokenizerArm want;
    ASSERT_TRUE(simd::ParseTokenizerArm(req, &want))
        << "AV_SIMD_REQUIRE=" << req << " is not an arm name";
    ASSERT_TRUE(simd::TokenizerArmAvailable(want))
        << "AV_SIMD_REQUIRE=" << req
        << " demanded an arm this build/CPU cannot deliver";
    EXPECT_EQ(simd::ResolveTokenizerArmFromEnv(), want);
    return;
  }
  const simd::TokenizerArm resolved = simd::ResolveTokenizerArmFromEnv();
  EXPECT_TRUE(simd::TokenizerArmAvailable(resolved));
  if (const char* env = std::getenv("AV_SIMD")) {
    simd::TokenizerArm requested;
    if (simd::ParseTokenizerArm(env, &requested) &&
        simd::TokenizerArmAvailable(requested)) {
      EXPECT_EQ(resolved, requested);
    }
  }
}

TEST(TokenizeTest, FuzzNeverCrashesAndCovers) {
  // Deterministic byte soup; the lexer must cover any input exactly.
  uint64_t state = 99;
  for (int iter = 0; iter < 200; ++iter) {
    std::string v;
    const size_t len = (state >> 5) % 64;
    for (size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      v.push_back(static_cast<char>(state >> 56));
    }
    const auto tokens = Tokenize(v);
    size_t covered = 0;
    for (const Token& t : tokens) covered += t.len;
    EXPECT_EQ(covered, v.size());
  }
}

}  // namespace
}  // namespace av
