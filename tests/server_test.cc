// avserved front-end tests, all in-process over real loopback sockets:
// endpoint round trips against the library's local results, per-connection
// request pipelining, protocol-error replies, graceful drain, and the
// generation-consistency guarantee under concurrent warm swaps (the
// TSan-targeted test of the acceptance criteria).
#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/validator.h"
#include "server/client.h"
#include "tests/test_util.h"

namespace av::net {
namespace {

ValidationRule DigitsRule(size_t width) {
  ValidationRule rule;
  rule.method = Method::kFmdvH;
  rule.pattern = *Pattern::Parse("<digit>{" + std::to_string(width) + "}");
  rule.segments = {rule.pattern};
  rule.train_size = 1000;
  rule.train_nonconforming = 1;
  return rule;
}

std::vector<std::string> Digits(size_t n, size_t width) {
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string v = std::to_string(i);
    v.insert(0, width > v.size() ? width - v.size() : 0, '1');
    values.push_back(std::move(v));
  }
  return values;
}

/// A serving stack on an ephemeral loopback port with a few stored rules.
class ServerTest : public testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<ValidationService>(
        nullptr, AutoValidateOptions{}, /*num_train_threads=*/2);
    service_->Upsert("a", DigitsRule(3));
    service_->Upsert("b", DigitsRule(3));
    ServerConfig cfg;
    cfg.num_workers = 4;
    server_ = std::make_unique<Server>(service_.get(), cfg);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  Client Connected() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::unique_ptr<ValidationService> service_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// Endpoint round trips.

TEST_F(ServerTest, ValidateMatchesLocal) {
  auto batch = Digits(200, 3);
  batch.push_back("oops");
  const ValidationReport local = *service_->Validate("a", batch);

  Client client = Connected();
  auto remote = client.Validate("a", batch);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->store_version, service_->version());
  EXPECT_EQ(remote->report.total, local.total);
  EXPECT_EQ(remote->report.nonconforming, local.nonconforming);
  EXPECT_DOUBLE_EQ(remote->report.theta_test, local.theta_test);
  EXPECT_DOUBLE_EQ(remote->report.p_value, local.p_value);
  EXPECT_EQ(remote->report.flagged, local.flagged);
  EXPECT_EQ(remote->report.sample_violations, local.sample_violations);
}

TEST_F(ServerTest, ValidateUnknownColumnIsNotFound) {
  Client client = Connected();
  auto remote = client.Validate("nope", Digits(5, 3));
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(remote.status().code(), StatusCode::kNotFound);
  // The connection survives an application-level error.
  EXPECT_TRUE(client.Validate("a", Digits(5, 3)).ok());
}

TEST_F(ServerTest, ValidateTableMatchesLocalPerColumn) {
  const auto good = Digits(120, 3);
  const auto bad = Digits(120, 6);
  const std::vector<NamedColumn> named = {
      {"a", ColumnView(good)}, {"b", ColumnView(bad)}, {"x", ColumnView(good)}};
  const TableReport local = service_->ValidateAll(named);

  Client client = Connected();
  auto remote = client.ValidateTable({{"a", good}, {"b", bad}, {"x", good}});
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->store_version, local.store_version);
  ASSERT_EQ(remote->columns.size(), local.columns.size());
  for (size_t i = 0; i < local.columns.size(); ++i) {
    EXPECT_EQ(remote->columns[i].name, local.columns[i].name);
    EXPECT_EQ(remote->columns[i].has_rule, local.columns[i].status.ok());
    if (local.columns[i].status.ok()) {
      EXPECT_EQ(remote->columns[i].report.nonconforming,
                local.columns[i].report.nonconforming);
      EXPECT_EQ(remote->columns[i].report.flagged,
                local.columns[i].report.flagged);
    }
  }
}

TEST_F(ServerTest, ColumnSessionStreamsAndPinsGeneration) {
  Client client = Connected();
  auto session = client.OpenColumnSession("a");
  ASSERT_TRUE(session.ok());
  const uint64_t pinned = session->store_version;

  // Swap the rule mid-stream: the session must keep judging by the rule it
  // opened with, and report the pinned generation.
  auto batch = Digits(100, 3);
  ASSERT_TRUE(client.FeedColumn(session->id, batch).ok());
  service_->Upsert("a", DigitsRule(6));
  EXPECT_GT(service_->version(), pinned);
  auto rows = client.FeedColumn(session->id, batch);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 200u);

  auto finished = client.FinishColumnSession(session->id);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->store_version, pinned);
  EXPECT_EQ(finished->report.total, 200u);
  EXPECT_EQ(finished->report.nonconforming, 0u);  // old 3-digit rule applied

  // The session is gone after Finish.
  EXPECT_EQ(client.FeedColumn(session->id, batch).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServerTest, TableSessionAccumulatesAcrossMicroBatches) {
  Client client = Connected();
  auto session = client.OpenTableSession();
  ASSERT_TRUE(session.ok());

  const auto good = Digits(50, 3);
  const auto bad = Digits(50, 6);
  ASSERT_TRUE(client.FeedTable(session->id, {{"a", good}}).ok());
  auto rows = client.FeedTable(session->id, {{"a", good}, {"b", bad}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 150u);

  auto finished = client.FinishTableSession(session->id);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->store_version, session->store_version);
  ASSERT_EQ(finished->columns.size(), 2u);
  EXPECT_EQ(finished->columns[0].name, "a");
  EXPECT_EQ(finished->columns[0].report.total, 100u);
  EXPECT_EQ(finished->columns[0].report.nonconforming, 0u);
  EXPECT_EQ(finished->columns[1].name, "b");
  EXPECT_EQ(finished->columns[1].report.nonconforming, 50u);
}

TEST_F(ServerTest, TrainWithoutIndexFailsCleanly) {
  Client client = Connected();
  auto trained = client.Train("c", Digits(100, 4));
  ASSERT_FALSE(trained.ok());
  EXPECT_EQ(trained.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, SaveRulesWithoutPathIsRejected) {
  Client client = Connected();
  auto saved = client.SaveRules();
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, StatsReportsCounters) {
  Client client = Connected();
  ASSERT_TRUE(client.Validate("a", Digits(10, 3)).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("frames_validate=1\n"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("store_rules=2\n"), std::string::npos);
  EXPECT_NE(stats->find("draining=0\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Transport behavior.

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  // Send N requests back-to-back without reading, then collect the replies:
  // they must come back in request order (per-connection FIFO handling).
  Client client = Connected();
  const auto batch = Digits(50, 3);
  WireWriter w;
  w.PutStr("a");
  w.PutValues(batch);
  const std::string validate_payload = w.Take();

  std::string burst;
  constexpr int kN = 16;
  for (int i = 0; i < kN; ++i) {
    burst += EncodeFrame(static_cast<uint8_t>(i % 2 == 0 ? Opcode::kValidate
                                                         : Opcode::kStats),
                         i % 2 == 0 ? validate_payload : std::string());
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (int i = 0; i < kN; ++i) {
    auto reply = client.RecvReply();
    ASSERT_TRUE(reply.ok()) << "reply " << i;
    ASSERT_EQ(reply->opcode, static_cast<uint8_t>(Opcode::kReplyOk));
    WireReader r(reply->payload);
    if (i % 2 == 0) {
      r.GetU64();  // version
      EXPECT_EQ(r.GetU64(), batch.size()) << "reply " << i;  // report.total
    } else {
      EXPECT_NE(std::string(r.GetStr()).find("uptime_ms="),
                std::string::npos);
    }
  }
}

TEST_F(ServerTest, BadHelloGetsErrorReplyAndClose) {
  // A raw socket speaking the wrong protocol: the server answers with one
  // kReplyError frame and closes — it never interprets any of the bytes as
  // a request.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char wrong[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, wrong, sizeof(wrong) - 1, MSG_NOSIGNAL), 0);

  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closed after flushing the error
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  FrameDecoder dec(/*expect_hello=*/false);
  ASSERT_TRUE(dec.Feed(received).ok());
  Frame f;
  ASSERT_TRUE(dec.Next(&f));
  EXPECT_EQ(f.opcode, static_cast<uint8_t>(Opcode::kReplyError));
  EXPECT_GE(server_->protocol_errors(), 1u);
}

TEST_F(ServerTest, ZeroLengthFrameGetsErrorReplyAndClose) {
  Client client = Connected();
  // Zero-length frame: framing error -> one kReplyError, then close.
  ASSERT_TRUE(client.SendRaw(std::string(4, '\0')).ok());
  auto reply = client.RecvReply();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->opcode, static_cast<uint8_t>(Opcode::kReplyError));
  // The server closes after flushing the error.
  auto eof = client.RecvReply();
  EXPECT_FALSE(eof.ok());
}

TEST_F(ServerTest, OversizedFrameRejected) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 1024;
  Server small(service_.get(), cfg);
  ASSERT_TRUE(small.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", small.port()).ok());
  WireWriter w;
  w.PutU32(4096);  // length prefix alone trips the cap
  ASSERT_TRUE(client.SendRaw(w.str()).ok());
  auto reply = client.RecvReply();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->opcode, static_cast<uint8_t>(Opcode::kReplyError));
  EXPECT_FALSE(client.RecvReply().ok());
  EXPECT_GE(small.protocol_errors(), 1u);
}

TEST_F(ServerTest, MalformedPayloadKeepsConnectionAlive) {
  Client client = Connected();
  // Valid framing, garbage payload: application error, connection stays.
  auto reply = client.Call(static_cast<uint8_t>(Opcode::kValidate), "xx");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->opcode, static_cast<uint8_t>(Opcode::kReplyError));
  EXPECT_TRUE(client.Validate("a", Digits(5, 3)).ok());
}

TEST_F(ServerTest, UnknownOpcodeIsInvalidArgument) {
  Client client = Connected();
  auto reply = client.Call(0x42, "");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->opcode, static_cast<uint8_t>(Opcode::kReplyError));
}

// ---------------------------------------------------------------------------
// Graceful drain.

TEST_F(ServerTest, ShutdownDrainsInFlightWork) {
  Client client = Connected();
  const auto batch = Digits(400, 3);
  WireWriter w;
  w.PutStr("a");
  w.PutValues(batch);
  // Queue real work, then SHUTDOWN, all pipelined in one burst: every
  // queued frame must still be answered, in order, before the close.
  std::string burst;
  constexpr int kWork = 8;
  for (int i = 0; i < kWork; ++i) {
    burst += EncodeFrame(static_cast<uint8_t>(Opcode::kValidate), w.str());
  }
  burst += EncodeFrame(static_cast<uint8_t>(Opcode::kShutdown), "");
  ASSERT_TRUE(client.SendRaw(burst).ok());

  for (int i = 0; i < kWork; ++i) {
    auto reply = client.RecvReply();
    ASSERT_TRUE(reply.ok()) << "reply " << i;
    EXPECT_EQ(reply->opcode, static_cast<uint8_t>(Opcode::kReplyOk));
  }
  auto ack = client.RecvReply();
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->opcode, static_cast<uint8_t>(Opcode::kReplyOk));

  server_->Join();  // the loop exits once everything is flushed
  EXPECT_TRUE(server_->draining());

  // New connections are refused after the drain.
  Client late;
  Status connect_st = late.Connect("127.0.0.1", server_->port());
  if (connect_st.ok()) {
    // The TCP connect may land in the backlog as the listener closes; the
    // request must then fail rather than be served.
    EXPECT_FALSE(late.Validate("a", Digits(5, 3)).ok());
  }
}

TEST_F(ServerTest, RequestDrainWithIdleConnectionsExits) {
  Client client = Connected();
  ASSERT_TRUE(client.Validate("a", Digits(5, 3)).ok());
  server_->RequestDrain();
  server_->Join();
  EXPECT_FALSE(client.Validate("a", Digits(5, 3)).ok());
}

// ---------------------------------------------------------------------------
// Generation consistency under concurrent warm swaps (acceptance criteria;
// the test TSan runs against the server's threading model).

TEST_F(ServerTest, WarmSwapNeverYieldsMixedGenerationResponses) {
  // Writer: swaps ALL columns between generation A (3-digit rules) and
  // generation B (6-digit rules) via UpsertBatch warm swaps, as fast as it
  // can. Clients: hammer VALIDATE_TABLE with a probe batch that generation
  // A accepts ("123") and generation B rejects. Every single response must
  // be internally uniform — all columns conforming or all nonconforming —
  // and carry one store_version.
  constexpr size_t kCols = 6;
  constexpr int kQueries = 60;
  std::vector<std::string> names;
  {
    std::vector<ValidationService::RuleUpdate> gen;
    for (size_t c = 0; c < kCols; ++c) {
      names.push_back("col" + std::to_string(c));
      gen.push_back({names.back(), DigitsRule(3), RuleMeta{}});
    }
    service_->UpsertBatch(std::move(gen));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    size_t width = 6;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<ValidationService::RuleUpdate> gen;
      gen.reserve(kCols);
      for (const std::string& name : names) {
        gen.push_back({name, DigitsRule(width), RuleMeta{}});
      }
      service_->UpsertBatch(std::move(gen));
      width = width == 3 ? 6 : 3;
    }
  });

  const std::vector<std::string> probe = {"123"};
  std::vector<std::pair<std::string, std::vector<std::string>>> table;
  for (const std::string& name : names) table.emplace_back(name, probe);

  std::atomic<int> mixed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
      for (int q = 0; q < kQueries; ++q) {
        auto reply = client.ValidateTable(table);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        ASSERT_EQ(reply->columns.size(), kCols);
        const uint64_t first = reply->columns[0].report.nonconforming;
        for (const auto& col : reply->columns) {
          if (!col.has_rule || col.report.nonconforming != first) {
            mixed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(mixed.load(), 0);
}

TEST_F(ServerTest, DrainDuringConcurrentTrafficAnswersEverything) {
  // Several clients pipeline work while the drain starts: every request
  // that got a connection must be answered or cleanly refused — no hangs,
  // no torn frames (RecvReply would return Corruption on a torn stream).
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> answered{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      for (int q = 0; q < 50; ++q) {
        auto reply = client.Validate("a", Digits(20, 3));
        if (!reply.ok()) return;  // drained under us: fine
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->RequestDrain();
  for (auto& t : threads) t.join();
  server_->Join();
  EXPECT_GT(answered.load(), 0);
}

// ---------------------------------------------------------------------------
// Slow-reader eviction (ServerConfig::max_outbox_bytes).

TEST(ServerEvictionTest, SlowReaderTripsOutboxCapAndIsEvicted) {
  ValidationService service(nullptr, AutoValidateOptions{},
                            /*num_train_threads=*/2);
  service.Upsert("a", DigitsRule(3));
  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.max_outbox_bytes = 64u << 10;  // tiny cap so the test trips it fast
  Server server(&service, cfg);
  ASSERT_TRUE(server.Start().ok());

  // A raw socket that floods requests and never reads a byte: replies pile
  // up in the kernel buffers (shrunk below), then in the connection's
  // outbox, which must hit the cap and evict — not grow without bound.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;  // tiny receive window: server output backs up
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Each request carries five 2 KiB non-conforming values, so every reply
  // echoes ~10 KiB of sample violations — a handful of unread replies
  // overflow the cap.
  WireWriter w;
  w.PutStr("a");
  w.PutValues(std::vector<std::string>(5, std::string(2048, 'x')));
  const std::string request =
      std::string(kHello, kHelloSize) +
      EncodeFrame(static_cast<uint8_t>(Opcode::kValidate), w.str());

  bool send_failed = false;
  for (int i = 0; i < 600 && server.connections_evicted() == 0; ++i) {
    const std::string_view bytes =
        i == 0 ? std::string_view(request)
               : std::string_view(request).substr(kHelloSize);
    // Sends may fail once the server reaps the connection — that is the
    // success path, not an error.
    if (::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) < 0) {
      send_failed = true;
      break;
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.connections_evicted() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.connections_evicted(), 1u)
      << "send_failed=" << send_failed;
  ::close(fd);

  // The eviction is per-connection: a well-behaved client still gets
  // served, and the stats endpoint reports the eviction.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Validate("a", Digits(5, 3)).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("connections_evicted=1"), std::string::npos)
      << *stats;
}

}  // namespace
}  // namespace av::net
