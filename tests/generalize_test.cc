#include "pattern/generalize.h"

#include <gtest/gtest.h>

#include <set>

#include "pattern/matcher.h"

namespace av {
namespace {

std::vector<std::string> MonthColumn() {
  // Figure 2's C1: all values from March 2019.
  std::vector<std::string> values;
  for (int d = 1; d <= 28; ++d) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "Mar %02d 2019", d);
    values.push_back(buf);
  }
  return values;
}

TEST(ColumnProfileTest, GroupsByShape) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"1/2/2019", "11/22/2020",
                                           "Delivered", "3/4/2021"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 2u);
  EXPECT_EQ(profile.shapes()[0].weight, 3u);  // dominant first
  EXPECT_EQ(profile.shapes()[1].weight, 1u);
  EXPECT_EQ(profile.total_weight(), 4u);
}

TEST(ColumnProfileTest, CountsDuplicates) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"a", "a", "a", "b"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 1u);
  EXPECT_EQ(profile.shapes()[0].weight, 4u);
  EXPECT_EQ(profile.num_distinct(), 2u);
}

TEST(ColumnProfileTest, EmptyValuesExcludedFromShapes) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"a", "", "b"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 1u);
  EXPECT_EQ(profile.shapes()[0].weight, 2u);
  EXPECT_EQ(profile.total_weight(), 3u);  // empty counted in total
}

TEST(ColumnProfileTest, DistinctCapFeedsTotalsOnly) {
  GeneralizeConfig cfg;
  cfg.max_distinct_values = 4;
  std::vector<std::string> values;
  for (int i = 0; i < 10; ++i) {
    std::string v = "v";
    v += std::to_string(i);
    values.push_back(std::move(v));
  }
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  EXPECT_EQ(profile.num_distinct(), 4u);
  EXPECT_EQ(profile.total_weight(), 10u);
}

TEST(ColumnProfileTest, OverTokenLimitFlagged) {
  GeneralizeConfig cfg;
  cfg.max_tokens = 3;
  const std::vector<std::string> values = {"a b c d e"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 1u);
  EXPECT_TRUE(profile.shapes()[0].over_token_limit);
}

TEST(HypothesisTest, IntersectionOptionsForC1) {
  // H(C) for the March column must contain the ideal validation pattern
  // "<letter>{3} <digit>{2} <digit>{4}" and the profiling pattern
  // "Mar <digit>{2} 2019" (both consistent with every value).
  GeneralizeConfig cfg;
  const auto values = MonthColumn();
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 1u);
  ShapeOptions options(profile, profile.shapes()[0], cfg);

  std::set<std::string> hypotheses;
  options.EnumerateHypotheses(100000, [&](Pattern&& p) {
    hypotheses.insert(p.ToString());
  });
  EXPECT_TRUE(hypotheses.count("<letter>{3} <digit>{2} <digit>{4}"))
      << "ideal validation pattern missing from H(C)";
  EXPECT_TRUE(hypotheses.count("Mar <digit>{2} 2019"))
      << "profiling pattern missing from H(C)";
  EXPECT_TRUE(hypotheses.count("Mar <digit>+ <digit>+"));
  // Patterns inconsistent with the data must be absent.
  EXPECT_FALSE(hypotheses.count("Apr <digit>{2} <digit>{4}"));
}

TEST(HypothesisTest, EveryHypothesisMatchesEveryValue) {
  GeneralizeConfig cfg;
  const auto values = MonthColumn();
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  size_t count = 0;
  options.EnumerateHypotheses(100000, [&](Pattern&& p) {
    ++count;
    for (const auto& v : values) {
      ASSERT_TRUE(Matches(p, v)) << p.ToString() << " vs " << v;
    }
  });
  EXPECT_GT(count, 4u);
}

TEST(HypothesisTest, MixedChunksUseAlnumLadder) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"1a2b-99", "7777-12", "abcd-34"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 1u);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  std::set<std::string> hypotheses;
  options.EnumerateHypotheses(100000, [&](Pattern&& p) {
    hypotheses.insert(p.ToString());
  });
  EXPECT_TRUE(hypotheses.count("<alnum>{4}-<digit>{2}"));
  EXPECT_TRUE(hypotheses.count("<alnum>+-<digit>+"));
  // Pure-class ladders cannot cover the mixed position.
  EXPECT_FALSE(hypotheses.count("<digit>{4}-<digit>{2}"));
}

TEST(HypothesisTest, CaseRungsForConsistentlyCasedColumns) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"en-us", "fr-fr", "de-jp"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  std::set<std::string> hypotheses;
  options.EnumerateHypotheses(100000, [&](Pattern&& p) {
    hypotheses.insert(p.ToString());
  });
  EXPECT_TRUE(hypotheses.count("<lower>{2}-<lower>{2}"));
  EXPECT_TRUE(hypotheses.count("<letter>{2}-<letter>{2}"));
}

TEST(HypothesisTest, NoLowerRungWhenCasingIsMixed) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"en-US", "fr-FR", "de-JP"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  std::set<std::string> hypotheses;
  options.EnumerateHypotheses(100000, [&](Pattern&& p) {
    hypotheses.insert(p.ToString());
  });
  EXPECT_TRUE(hypotheses.count("<lower>{2}-<upper>{2}"));
  EXPECT_FALSE(hypotheses.count("<lower>{2}-<lower>{2}"));
  EXPECT_FALSE(hypotheses.count("<upper>{2}-<upper>{2}"));
}

TEST(UnionEnumerationTest, WeightsAreExactMatchCounts) {
  GeneralizeConfig cfg;
  cfg.coverage_frac = 0.0;
  cfg.min_cover_values = 1;
  // 3 values with 1-digit hour, 1 value with 2-digit hour.
  const std::vector<std::string> values = {"9:07", "8:30", "7:45", "10:02"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ASSERT_EQ(profile.shapes().size(), 1u);
  ShapeOptions options(profile, profile.shapes()[0], cfg);

  bool saw_fix1 = false, saw_var = false;
  options.EnumerateUnion(1, 100000, [&](Pattern&& p, uint64_t weight) {
    const std::string s = p.ToString();
    // Cross-check every reported weight against the matcher.
    size_t matched = 0;
    for (const auto& v : values) {
      if (Matches(p, v)) ++matched;
    }
    EXPECT_EQ(matched, weight) << s;
    if (s == "<digit>{1}:<digit>{2}") {
      saw_fix1 = true;
      EXPECT_EQ(weight, 3u);
    }
    if (s == "<digit>+:<digit>{2}") {
      saw_var = true;
      EXPECT_EQ(weight, 4u);
    }
  });
  EXPECT_TRUE(saw_fix1);
  EXPECT_TRUE(saw_var);
}

TEST(UnionEnumerationTest, CoveragePruningDropsRarePatterns) {
  GeneralizeConfig cfg;
  std::vector<std::string> values;
  for (int i = 0; i < 99; ++i) values.push_back(std::to_string(1000 + i));
  values.push_back("7");  // rare 1-digit value
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  const uint64_t min_weight = 5;  // 5% coverage floor
  options.EnumerateUnion(min_weight, 100000, [&](Pattern&& p, uint64_t w) {
    EXPECT_GE(w, min_weight) << p.ToString();
    EXPECT_NE(p.ToString(), "<digit>{1}");
  });
}

TEST(UnionEnumerationTest, RespectsPatternBudget) {
  GeneralizeConfig cfg;
  cfg.coverage_frac = 0;
  cfg.min_cover_values = 1;
  std::vector<std::string> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(std::to_string(10 + i) + ":" + std::to_string(10 + i));
  }
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  size_t emitted = 0;
  options.EnumerateUnion(1, 7, [&](Pattern&&, uint64_t) { ++emitted; });
  EXPECT_LE(emitted, 7u);
  EXPECT_GT(emitted, 0u);
}

TEST(HypothesisRangeTest, SubRangeEnumeratesSegmentPatterns) {
  GeneralizeConfig cfg;
  const std::vector<std::string> values = {"12:34 OK", "56:78 OK"};
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  ShapeOptions options(profile, profile.shapes()[0], cfg);
  // Positions: [digits][:][digits][ ][letters] — range [0,3) is "12:34".
  std::set<std::string> hypotheses;
  options.EnumerateHypothesesRange(0, 3, 1000, [&](Pattern&& p) {
    hypotheses.insert(p.ToString());
  });
  EXPECT_TRUE(hypotheses.count("<digit>{2}:<digit>{2}"));
  EXPECT_FALSE(hypotheses.count("<digit>{2}:<digit>{2} OK"));
}

TEST(AppendAtomMergedTest, MergesLiterals) {
  std::vector<Atom> atoms;
  AppendAtomMerged(atoms, Atom::Literal("a"));
  AppendAtomMerged(atoms, Atom::Literal("b"));
  AppendAtomMerged(atoms, Atom::Var(AtomKind::kDigitsVar));
  AppendAtomMerged(atoms, Atom::Literal("c"));
  ASSERT_EQ(atoms.size(), 3u);
  EXPECT_EQ(atoms[0].lit, "ab");
}

}  // namespace
}  // namespace av
