// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  - every generator domain's values match its ground-truth pattern;
//  - every algorithm variant round-trips train -> validate on clean data
//    and flags drifted data;
//  - the two-sample tests behave like p-values across a grid of tables;
//  - the matcher agrees with the enumerated ladder space on random values.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/auto_validate.h"
#include "core/stat_tests.h"
#include "lakegen/lakegen.h"
#include "pattern/hierarchy.h"
#include "pattern/matcher.h"
#include "tests/test_util.h"

namespace av {
namespace {

// ---------------------------------------------------------------------------
// Per-domain ground-truth sweep.
// ---------------------------------------------------------------------------

class DomainGroundTruthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DomainGroundTruthTest, AllValuesMatchGroundTruth) {
  const DomainSpec& dom = EnterpriseDomains()[GetParam()];
  if (dom.ground_truth.empty()) {
    GTEST_SKIP() << dom.name << " is a natural-language domain";
  }
  auto gt = Pattern::Parse(dom.ground_truth);
  ASSERT_TRUE(gt.ok()) << dom.name;
  Rng col_rng(99 + GetParam());
  for (int column = 0; column < 2; ++column) {
    RowGen gen = dom.make_column(col_rng);
    Rng row_rng(7 * GetParam() + column);
    for (int r = 0; r < 60; ++r) {
      const std::string v = gen(row_rng);
      ASSERT_TRUE(Matches(*gt, v))
          << dom.name << ": \"" << v << "\" violates " << dom.ground_truth;
    }
  }
}

TEST_P(DomainGroundTruthTest, ValuesAreHomogeneousInShape) {
  // Machine-generated domains produce a single shape group (the paper's
  // homogeneity assumption, §2.1), except the deliberately flexible ones.
  const DomainSpec& dom = EnterpriseDomains()[GetParam()];
  if (!dom.syntactic || dom.ground_truth.empty()) {
    GTEST_SKIP() << dom.name << " is not a fixed-shape domain";
  }
  Rng col_rng(5 + GetParam());
  RowGen gen = dom.make_column(col_rng);
  Rng row_rng(13 * GetParam());
  std::vector<std::string> values;
  for (int r = 0; r < 80; ++r) values.push_back(gen(row_rng));
  GeneralizeConfig cfg;
  cfg.max_tokens = static_cast<size_t>(-1);
  const ColumnProfile profile = ColumnProfile::Build(values, cfg);
  EXPECT_EQ(profile.shapes().size(), 1u) << dom.name;
}

std::string DomainName(const ::testing::TestParamInfo<size_t>& info) {
  return EnterpriseDomains()[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, DomainGroundTruthTest,
    ::testing::Range<size_t>(0, EnterpriseDomains().size()), DomainName);

class GovDomainGroundTruthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GovDomainGroundTruthTest, AllValuesMatchGroundTruth) {
  const DomainSpec& dom = GovernmentDomains()[GetParam()];
  if (dom.ground_truth.empty()) {
    GTEST_SKIP() << dom.name << " has no syntactic ground truth";
  }
  auto gt = Pattern::Parse(dom.ground_truth);
  ASSERT_TRUE(gt.ok()) << dom.name;
  Rng col_rng(7 + GetParam());
  RowGen gen = dom.make_column(col_rng);
  Rng row_rng(31 * GetParam());
  for (int r = 0; r < 60; ++r) {
    const std::string v = gen(row_rng);
    // The deliberately messy government domains may emit off-format rows;
    // the bulk must still match.
    if (dom.name == "messy_date") continue;
    ASSERT_TRUE(Matches(*gt, v))
        << dom.name << ": \"" << v << "\" violates " << dom.ground_truth;
  }
}

std::string GovDomainName(const ::testing::TestParamInfo<size_t>& info) {
  return GovernmentDomains()[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(
    GovDomains, GovDomainGroundTruthTest,
    ::testing::Range<size_t>(0, GovernmentDomains().size()), GovDomainName);

// ---------------------------------------------------------------------------
// Pattern::Parse never crashes and round-trips whatever it accepts.
// ---------------------------------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, ParseIsTotalAndRoundTrips) {
  Rng rng(GetParam());
  static const char kAlphabet[] =
      "<>{}+\\abcdigtlenuprm0123456789 -:/.";
  for (int iter = 0; iter < 400; ++iter) {
    std::string text;
    const size_t len = rng.Below(24);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(kAlphabet[rng.Below(sizeof(kAlphabet) - 1)]);
    }
    auto parsed = Pattern::Parse(text);
    if (!parsed.ok()) continue;  // rejection is fine; crashing is not
    // Accepted patterns must round-trip through their canonical form.
    const std::string canon = parsed->ToString();
    auto again = Pattern::Parse(canon);
    ASSERT_TRUE(again.ok()) << canon;
    EXPECT_EQ(again->ToString(), canon);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Per-method end-to-end sweep.
// ---------------------------------------------------------------------------

class MethodSweepTest : public ::testing::TestWithParam<Method> {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(testutil::DomainsCorpus({
        {"ipv4", 25},
        {"status_enum", 20},
        {"iso_date", 20},
        {"kv_id", 15},
        {"kv_status", 15},
        {"kv_epoch", 15},
        {"nl_phrase", 10},
    }));
    index_ = new PatternIndex(testutil::BuildTestIndex(*corpus_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete corpus_;
  }
  static Corpus* corpus_;
  static PatternIndex* index_;
};

Corpus* MethodSweepTest::corpus_ = nullptr;
PatternIndex* MethodSweepTest::index_ = nullptr;

TEST_P(MethodSweepTest, TrainValidateRoundTrip) {
  AutoValidateOptions opts;
  opts.min_coverage = 5;
  const AutoValidate engine(index_, opts);

  Rng rng(3);
  std::vector<std::string> train, future;
  for (int i = 0; i < 60; ++i) {
    train.push_back("10.1." + std::to_string(rng.Range(0, 255)) + "." +
                    std::to_string(rng.Range(1, 254)));
    future.push_back("172.16." + std::to_string(rng.Range(0, 255)) + "." +
                     std::to_string(rng.Range(1, 254)));
  }
  auto rule = engine.Train(train, GetParam());
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->method, GetParam());
  // Same-domain future data passes (subnets differ from training!).
  EXPECT_FALSE(engine.Validate(*rule, future).flagged);
  // Drifted data alarms.
  std::vector<std::string> drifted(100, std::string("Delivered"));
  EXPECT_TRUE(engine.Validate(*rule, drifted).flagged);
}

TEST_P(MethodSweepTest, HorizontalVariantsTolerateDirt) {
  AutoValidateOptions opts;
  opts.min_coverage = 5;
  const AutoValidate engine(index_, opts);

  Rng rng(4);
  std::vector<std::string> train;
  for (int i = 0; i < 57; ++i) {
    train.push_back("10.2." + std::to_string(rng.Range(0, 255)) + "." +
                    std::to_string(rng.Range(1, 254)));
  }
  train.push_back("-");
  train.push_back("N/A");
  train.push_back("");

  auto rule = engine.Train(train, GetParam());
  const bool horizontal =
      GetParam() == Method::kFmdvH || GetParam() == Method::kFmdvVH;
  EXPECT_EQ(rule.ok(), horizontal) << MethodName(GetParam());
  if (rule.ok()) {
    EXPECT_EQ(rule->train_nonconforming, 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSweepTest,
                         ::testing::Values(Method::kFmdv, Method::kFmdvV,
                                           Method::kFmdvH, Method::kFmdvVH),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           std::string name = MethodName(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Statistical-test grid properties.
// ---------------------------------------------------------------------------

struct StatGridCase {
  uint64_t a, b, c, d;
};

class StatTestGrid : public ::testing::TestWithParam<StatGridCase> {};

TEST_P(StatTestGrid, PValuesAreProbabilitiesAndAgreeOnExtremes) {
  const auto& g = GetParam();
  const double pf = FisherExactTwoTailedP(g.a, g.b, g.c, g.d);
  const double px = ChiSquaredYatesP(g.a, g.b, g.c, g.d);
  EXPECT_GE(pf, 0.0);
  EXPECT_LE(pf, 1.0);
  EXPECT_GE(px, 0.0);
  EXPECT_LE(px, 1.0);
  // Row-swap symmetry.
  EXPECT_NEAR(pf, FisherExactTwoTailedP(g.c, g.d, g.a, g.b), 1e-9);
  EXPECT_NEAR(px, ChiSquaredYatesP(g.c, g.d, g.a, g.b), 1e-9);
  // The two tests agree on clearly-significant and clearly-null tables.
  if (pf < 1e-4 || pf > 0.5) {
    EXPECT_EQ(pf < 0.01, px < 0.01)
        << "fisher=" << pf << " chi2=" << px;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StatTestGrid,
    ::testing::Values(StatGridCase{0, 100, 0, 900},
                      StatGridCase{1, 999, 45, 855},
                      StatGridCase{5, 95, 50, 450},
                      StatGridCase{10, 90, 100, 900},
                      StatGridCase{2, 98, 3, 97},
                      StatGridCase{0, 50, 25, 25},
                      StatGridCase{7, 3, 70, 30},
                      StatGridCase{1, 1, 1, 1}));

// ---------------------------------------------------------------------------
// Matcher <-> ladder-membership equivalence on random values.
// ---------------------------------------------------------------------------

class LadderEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LadderEquivalenceTest, EnumeratedPatternsAllMatchTheirValue) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    // Random short machine-ish value.
    std::string v;
    const size_t segments = 1 + rng.Below(3);
    for (size_t s = 0; s < segments; ++s) {
      if (s > 0) v.push_back(rng.Chance(0.5) ? '-' : ':');
      switch (rng.Below(4)) {
        case 0:
          v += rng.DigitString(1 + rng.Below(4));
          break;
        case 1:
          v += rng.LowerString(1 + rng.Below(4));
          break;
        case 2:
          v += rng.HexString(1 + rng.Below(4));
          break;
        default: {
          std::string upper = rng.LowerString(1 + rng.Below(3));
          for (auto& ch : upper) ch = static_cast<char>(ch - 'a' + 'A');
          v += upper;
        }
      }
    }
    for (const Pattern& p : EnumerateValuePatterns(v, 3000)) {
      ASSERT_TRUE(Matches(p, v)) << p.ToString() << " vs " << v;
      // Round-trip through the canonical string form preserves semantics.
      auto reparsed = Pattern::Parse(p.ToString());
      ASSERT_TRUE(reparsed.ok()) << p.ToString();
      ASSERT_TRUE(Matches(*reparsed, v)) << p.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace av
