// Figure 10(a): precision/recall of all methods on the enterprise benchmark
// B_E, evaluated on the subset of cases where syntactic patterns exist
// (the paper's 571 of 1000 cases).
#include "baselines/ad_ub.h"
#include "baselines/fd_ub.h"
#include "bench/bench_util.h"

namespace av {
namespace {

/// Appends the FD-UB and AD-UB upper-bound rows (Section 5.2).
void AppendUpperBounds(const Corpus& corpus, const Benchmark& bench,
                       std::vector<MethodEvaluation>* evals) {
  const auto columns = corpus.AllColumns();
  const auto subset = bench.SyntacticSubset();

  // FD-UB: fraction of benchmark columns participating in any FD.
  size_t covered = 0;
  for (size_t i : subset) {
    const BenchmarkCase& c = bench.cases[i];
    const Column* col = columns[c.corpus_column_id];
    // Locate the owning table to check FDs.
    for (const Table& t : corpus.tables()) {
      if (t.name != col->table_name) continue;
      for (size_t k = 0; k < t.columns.size(); ++k) {
        if (&t.columns[k] == col) {
          if (ColumnParticipatesInFd(t, k)) ++covered;
          break;
        }
      }
      break;
    }
  }
  MethodEvaluation fd;
  fd.method = "FD-UB";
  fd.precision = 1.0;  // assumed perfect, per the paper
  fd.recall = subset.empty() ? 0
                             : static_cast<double>(covered) /
                                   static_cast<double>(subset.size());
  fd.f1 = F1Score(fd.precision, fd.recall);
  fd.cases_evaluated = subset.size();
  evals->push_back(std::move(fd));

  // AD-UB: common-pattern co-occurrence coverage.
  const auto common = CommonShapes(corpus, 50);
  std::vector<std::string> shapes;
  shapes.reserve(subset.size());
  for (size_t i : subset) {
    shapes.push_back(DominantShapeKey(bench.cases[i].train));
  }
  double recall_sum = 0;
  for (size_t k = 0; k < shapes.size(); ++k) {
    recall_sum += AdUbRecallForCase(shapes[k], shapes, k, common);
  }
  MethodEvaluation ad;
  ad.method = "AD-UB";
  ad.precision = 1.0;
  ad.recall = shapes.empty() ? 0 : recall_sum / shapes.size();
  ad.f1 = F1Score(ad.precision, ad.recall);
  ad.cases_evaluated = subset.size();
  evals->push_back(std::move(ad));
}

}  // namespace
}  // namespace av

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader(
      "Figure 10(a): Recall vs Precision, enterprise benchmark", flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  av::bench::MethodRoster roster = av::bench::MethodRoster::Build(wb, flags);

  const auto subset = wb.benchmark.SyntacticSubset();
  std::printf("benchmark: %zu cases, %zu with syntactic patterns\n\n",
              wb.benchmark.cases.size(), subset.size());

  av::EvalConfig cfg;
  cfg.num_threads = flags.threads;
  std::vector<av::MethodEvaluation> evals;
  for (const auto& [name, learner] : roster.methods) {
    evals.push_back(av::EvaluateMethod(wb.benchmark, name, learner, cfg));
  }
  av::AppendUpperBounds(wb.corpus, wb.benchmark, &evals);

  av::PrintPrecisionRecallTable(evals);
  std::printf(
      "\nshape check (paper Fig. 10a): FMDV-VH best (~0.96 P / 0.88 R);\n"
      "FMDV-VH >= FMDV-H >= FMDV-V >= FMDV; PWheel & SM-I-1 best baselines;\n"
      "TFDV/Deequ low precision; Grok high precision, low recall.\n");
  return 0;
}
