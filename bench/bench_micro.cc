// google-benchmark microbenchmarks for the performance-critical primitives:
// tokenizer, matcher, P(v) enumeration, hypothesis enumeration, index
// lookups, Fisher's exact test and end-to-end FMDV training.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common/rng.h"
#include "common/temp_file.h"
#include "core/auto_validate.h"
#include "corpus/format.h"
#include "core/stat_tests.h"
#include "core/validation_service.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"
#include "pattern/generalize.h"
#include "pattern/hierarchy.h"
#include "pattern/matcher.h"
#include "pattern/simd/token_simd.h"
#include "server/client.h"
#include "server/server.h"

namespace av {
namespace {

const char* kDateValue = "9/12/2019 12:01:32 PM";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(kDateValue));
  }
}
BENCHMARK(BM_Tokenize);

/// The zero-allocation hot path every batched layer uses (buffer reused).
void BM_TokenizeInto(benchmark::State& state) {
  std::vector<Token> buf;
  for (auto _ : state) {
    TokenizeInto(kDateValue, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_TokenizeInto);

/// Counting-only scan (tau pre-checks): no token materialization at all.
void BM_TokenCount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenCount(kDateValue));
  }
}
BENCHMARK(BM_TokenCount);

/// A value mix with long alphanumeric runs (GUIDs, hex ids, words) where the
/// SWAR word-at-a-time path matters; items/sec counts values tokenized.
std::vector<std::string> TokenizeBenchColumn() {
  Rng rng(7);
  std::vector<std::string> values;
  for (int i = 0; i < 64; ++i) {
    switch (i % 4) {
      case 0:
        values.push_back(rng.HexString(8) + "-" + rng.HexString(4) + "-" +
                         rng.HexString(4) + "-" + rng.HexString(12));
        break;
      case 1:
        values.push_back(kDateValue);
        break;
      case 2:
        values.push_back("serving-endpoint-" + std::to_string(i) +
                         ".prod.example.com");
        break;
      default:
        values.push_back("0x" + rng.HexString(16));
        break;
    }
  }
  return values;
}

void BM_TokenizeMixedColumn(benchmark::State& state) {
  const std::vector<std::string> values = TokenizeBenchColumn();
  std::vector<Token> buf;
  for (auto _ : state) {
    for (const auto& v : values) {
      TokenizeInto(v, &buf);
      benchmark::DoNotOptimize(buf.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_TokenizeMixedColumn);

/// Per-arm variants of the two tokenizer hot paths, registered as
/// BM_TokenizeMixedColumn_<arm> / BM_TokenCountMixedColumn_<arm> for every
/// dispatch arm this machine can run (see docs/BENCHMARKING.md for how the
/// SIMD arms are judged). Each forces its arm for the timed loop and
/// restores the previously active one after.
void TokenizeMixedColumnArm(benchmark::State& state, simd::TokenizerArm arm) {
  const simd::TokenizerArm prev = simd::TokenizerDispatch();
  simd::SetTokenizerArm(arm);
  const std::vector<std::string> values = TokenizeBenchColumn();
  std::vector<Token> buf;
  for (auto _ : state) {
    for (const auto& v : values) {
      TokenizeInto(v, &buf);
      benchmark::DoNotOptimize(buf.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
  simd::SetTokenizerArm(prev);
}

void TokenCountMixedColumnArm(benchmark::State& state, simd::TokenizerArm arm) {
  const simd::TokenizerArm prev = simd::TokenizerDispatch();
  simd::SetTokenizerArm(arm);
  const std::vector<std::string> values = TokenizeBenchColumn();
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& v : values) total += TokenCount(v);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
  simd::SetTokenizerArm(prev);
}

const bool g_arm_benches_registered = [] {
  for (const simd::TokenizerArm arm : simd::AvailableTokenizerArms()) {
    const std::string suffix = simd::TokenizerArmName(arm);
    benchmark::RegisterBenchmark(
        ("BM_TokenizeMixedColumn_" + suffix).c_str(),
        [arm](benchmark::State& s) { TokenizeMixedColumnArm(s, arm); });
    benchmark::RegisterBenchmark(
        ("BM_TokenCountMixedColumn_" + suffix).c_str(),
        [arm](benchmark::State& s) { TokenCountMixedColumnArm(s, arm); });
  }
  return true;
}();

void BM_Match(benchmark::State& state) {
  const Pattern p = *Pattern::Parse(
      "<digit>+/<digit>+/<digit>{4} <digit>+:<digit>{2}:<digit>{2} "
      "<letter>{2}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(p, kDateValue));
  }
}
BENCHMARK(BM_Match);

void BM_MatchRejectEarly(benchmark::State& state) {
  const Pattern p = *Pattern::Parse("<digit>{4}-<digit>{2}-<digit>{2}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(p, kDateValue));
  }
}
BENCHMARK(BM_MatchRejectEarly);

void BM_EnumerateValuePatterns(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateValuePatterns("9:07:32", 100000));
  }
}
BENCHMARK(BM_EnumerateValuePatterns);

void BM_ColumnProfileBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(std::to_string(rng.Range(1, 12)) + "/" +
                     std::to_string(rng.Range(1, 28)) + "/2019");
  }
  GeneralizeConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColumnProfile::Build(values, cfg));
  }
}
BENCHMARK(BM_ColumnProfileBuild);

void BM_FisherExact(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(FisherExactTwoTailedP(3, 97, 45, 855));
  }
}
BENCHMARK(BM_FisherExact);

/// A 200-value date-like column used by the match-throughput benchmarks.
std::vector<std::string> MatchBenchColumn() {
  Rng rng(11);
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(std::to_string(rng.Range(1, 12)) + "/" +
                     std::to_string(rng.Range(1, 28)) + "/2019 " +
                     std::to_string(rng.Range(0, 23)) + ":" +
                     std::to_string(rng.Range(10, 59)) + ":" +
                     std::to_string(rng.Range(10, 59)));
  }
  return values;
}

const char* kMatchBenchPattern =
    "<digit>+/<digit>+/<digit>{4} <digit>+:<digit>{2}:<digit>{2}";

/// Pattern-match throughput, scalar path: tokenizes every value per call.
/// Note this scalar path was itself sped up by the batching PR (thread-local
/// scratch, memo skip for deterministic patterns), so the in-tree
/// scalar-vs-batched delta UNDERSTATES the PR's speedup; the recorded
/// baseline in BENCH_micro.json (280 ns/value) comes from the seed binary.
/// Per-value time = total / 200.
void BM_MatchColumnScalar(benchmark::State& state) {
  const Pattern p = *Pattern::Parse(kMatchBenchPattern);
  const std::vector<std::string> values = MatchBenchColumn();
  for (auto _ : state) {
    size_t n = 0;
    for (const auto& v : values) n += Matches(p, v) ? 1 : 0;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_MatchColumnScalar);

/// Pattern-match throughput, batched path: the column is tokenized once and
/// every match reuses its spans and one memo buffer.
void BM_MatchColumnBatched(benchmark::State& state) {
  const Pattern p = *Pattern::Parse(kMatchBenchPattern);
  const std::vector<std::string> values = MatchBenchColumn();
  const TokenizedColumn column = TokenizedColumn::Build(values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountMatches(p, column));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_MatchColumnBatched);

void BM_TokenizedColumnBuild(benchmark::State& state) {
  const std::vector<std::string> values = MatchBenchColumn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenizedColumn::Build(values));
  }
}
BENCHMARK(BM_TokenizedColumnBuild);

void BM_PatternKey(benchmark::State& state) {
  const Pattern p = *Pattern::Parse(kMatchBenchPattern);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternKey(p));
  }
}
BENCHMARK(BM_PatternKey);

/// Index-build microbenchmark, per-column kernel: P(D) enumeration and
/// keyed accumulation for one 200-value column.
void BM_IndexColumn(benchmark::State& state) {
  Column col;
  col.values = MatchBenchColumn();
  IndexerConfig cfg;
  for (auto _ : state) {
    PatternIndex idx;
    benchmark::DoNotOptimize(IndexColumn(col, cfg, &idx));
  }
}
BENCHMARK(BM_IndexColumn);

/// Index-build microbenchmark, whole job: offline scan of a small lake.
void BM_BuildIndexSmall(benchmark::State& state) {
  const Corpus corpus = GenerateLake(EnterpriseLakeConfig(150, 7));
  IndexerConfig cfg;
  cfg.num_threads = 1;
  uint64_t patterns = 0;
  for (auto _ : state) {
    IndexerReport report;
    const PatternIndex idx = BuildIndex(corpus, cfg, &report);
    benchmark::DoNotOptimize(idx.size());
    patterns = report.patterns_emitted;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(patterns));
}
BENCHMARK(BM_BuildIndexSmall)->UseRealTime();

/// The same 150-column offline job on the out-of-core path: every chunk
/// index spills to an AVSPILL01 run and the reduce is the k-way streaming
/// merge. The delta vs BM_BuildIndexSmall is the spill tax (serialize +
/// merge I/O) paid for bounded memory; output bytes are identical.
void BM_BuildIndexSpill(benchmark::State& state) {
  const Corpus corpus = GenerateLake(EnterpriseLakeConfig(150, 7));
  IndexerConfig cfg;
  cfg.num_threads = 1;
  cfg.build.memory_budget_bytes = 4ull << 20;  // below one chunk: all spill
  uint64_t patterns = 0;
  for (auto _ : state) {
    IndexerReport report;
    CorpusColumnReader reader(corpus);
    auto idx = BuildIndexStreaming(reader, cfg, &report);
    benchmark::DoNotOptimize(idx->size());
    patterns = report.patterns_emitted;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(patterns));
}
BENCHMARK(BM_BuildIndexSpill)->UseRealTime();

/// The same 150-column lake materialized on disk in `format`, indexed
/// through the format registry (listing + detection + parse + chunking).
/// The delta vs BM_BuildIndexSmall is the end-to-end cost of that input
/// format's read path.
void BuildIndexFromFormat(benchmark::State& state, LakeFormat format) {
  static const ScopedTempDir* jsonl_dir = nullptr;
  static const ScopedTempDir* avcol_dir = nullptr;
  const ScopedTempDir*& dir =
      format == LakeFormat::kJsonl ? jsonl_dir : avcol_dir;
  if (dir == nullptr) {
    auto created = ScopedTempDir::Create();
    if (!created.ok() ||
        !SaveLakeToDir(GenerateLake(EnterpriseLakeConfig(150, 7)),
                       created->path(), format)
             .ok()) {
      state.SkipWithError("cannot materialize bench lake");
      return;
    }
    dir = new ScopedTempDir(std::move(*created));  // lives for the run
  }
  IndexerConfig cfg;
  cfg.num_threads = 1;
  uint64_t patterns = 0;
  for (auto _ : state) {
    IndexerReport report;
    auto reader = LakeDirColumnReader::Open(dir->path(), format);
    auto idx = BuildIndexStreaming(*reader, cfg, &report);
    benchmark::DoNotOptimize(idx->size());
    patterns = report.patterns_emitted;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(patterns));
}

void BM_BuildIndexJsonl(benchmark::State& state) {
  BuildIndexFromFormat(state, LakeFormat::kJsonl);
}
BENCHMARK(BM_BuildIndexJsonl)->UseRealTime();

void BM_BuildIndexAvcol(benchmark::State& state) {
  BuildIndexFromFormat(state, LakeFormat::kAvcol);
}
BENCHMARK(BM_BuildIndexAvcol)->UseRealTime();

/// Shared fixture: a small lake and its index, built once.
struct TrainFixture {
  Corpus corpus;
  PatternIndex index;
  std::vector<std::string> query;

  TrainFixture() {
    corpus = GenerateLake(EnterpriseLakeConfig(600, 7));
    IndexerConfig cfg;
    index = BuildIndex(corpus, cfg);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      query.push_back("10.0." + std::to_string(rng.Range(0, 255)) + "." +
                      std::to_string(rng.Range(1, 254)));
    }
  }
  static const TrainFixture& Get() {
    static TrainFixture* fixture = new TrainFixture();
    return *fixture;
  }
};

void BM_IndexLookup(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  const std::string key = "<digit>+.<digit>+.<digit>+.<digit>+";
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.index.Lookup(key));
  }
}
BENCHMARK(BM_IndexLookup);

/// The FMDV hot path: probe by precomputed interned key (no string hashing).
void BM_IndexLookupByKey(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  const Pattern p = *Pattern::Parse("<digit>+.<digit>+.<digit>+.<digit>+");
  const uint64_t key = PatternKey(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.index.Lookup(key));
  }
}
BENCHMARK(BM_IndexLookupByKey);

void BM_TrainFmdv(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Train(fx.query, Method::kFmdv));
  }
}
BENCHMARK(BM_TrainFmdv);

void BM_TrainFmdvVH(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Train(fx.query, Method::kFmdvVH));
  }
}
BENCHMARK(BM_TrainFmdvVH);

void BM_ValidateColumn(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  auto rule = engine.Train(fx.query, Method::kFmdv);
  if (!rule.ok()) {
    state.SkipWithError("rule not learnable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateColumn(*rule, fx.query));
  }
}
BENCHMARK(BM_ValidateColumn);

/// The zero-copy steady-state path: values arrive as string_views (e.g. an
/// arrow arena) and stream through a ValidationSession. No per-value string
/// copies; compare against BM_ValidateColumn for the ColumnView overhead.
void BM_ValidateColumnView(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  auto trained = engine.Train(fx.query, Method::kFmdv);
  if (!trained.ok()) {
    state.SkipWithError("rule not learnable");
    return;
  }
  const auto rule =
      std::make_shared<const ValidationRule>(std::move(trained).value());
  std::vector<std::string_view> views(fx.query.begin(), fx.query.end());
  for (auto _ : state) {
    ValidationSession session(rule);
    session.Feed(views);
    benchmark::DoNotOptimize(session.Finish());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(views.size()));
}
BENCHMARK(BM_ValidateColumnView);

/// Shared fixture for the serving layer: a ValidationService with trained
/// rules for several named columns plus per-column query batches.
struct ServiceFixture {
  const TrainFixture& train = TrainFixture::Get();
  AutoValidateOptions opts;
  ValidationService service;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> batches;

  ServiceFixture()
      : opts([] {
          AutoValidateOptions o;
          o.min_coverage = 3;
          return o;
        }()),
        service(&TrainFixture::Get().index, opts) {
    Rng rng(11);
    const auto make = [&rng](int domain, size_t rows) {
      std::vector<std::string> values;
      for (size_t i = 0; i < rows; ++i) {
        switch (domain) {
          case 0:
            values.push_back("10.0." + std::to_string(rng.Range(0, 255)) +
                             "." + std::to_string(rng.Range(1, 254)));
            break;
          case 1:
            values.push_back("2019-" + std::string(rng.Range(0, 1) ? "0" : "1") +
                             std::to_string(rng.Range(0, 2)) + "-" +
                             std::to_string(rng.Range(10, 28)));
            break;
          default:
            values.push_back("JOB-" + rng.DigitString(6));
            break;
        }
      }
      return values;
    };
    std::vector<ValidationService::NamedColumn> columns;
    std::vector<std::vector<std::string>> train_cols;
    for (int d = 0; d < 3; ++d) train_cols.push_back(make(d, 100));
    for (int d = 0; d < 3; ++d) {
      names.push_back("col_" + std::to_string(d));
      columns.push_back({names.back(), train_cols[d]});
      batches.push_back(make(d, 100));
    }
    service.TrainAll(columns, Method::kFmdv);
  }
  static const ServiceFixture& Get() {
    static ServiceFixture* fixture = new ServiceFixture();
    return *fixture;
  }
};

/// End-to-end serving throughput: concurrent threads validating named
/// columns against the shared rule store (wait-free snapshot reads). Run
/// with --benchmark_filter=BM_ServiceValidateThroughput; items/sec is
/// columns validated per second across all threads.
void BM_ServiceValidateThroughput(benchmark::State& state) {
  const auto& fx = ServiceFixture::Get();
  const size_t which = static_cast<size_t>(state.thread_index()) % 3;
  for (auto _ : state) {
    auto report = fx.service.Validate(fx.names[which], fx.batches[which]);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceValidateThroughput)->Threads(8)->UseRealTime();

/// Table-serving fixture: a wide "shared-values" table — the recurring-
/// pipeline shape where low-cardinality columns repeat a small set of
/// distinct values across thousands of rows, which is exactly where the
/// tokenize-once (dedup) path pays off.
struct TableFixture {
  const ServiceFixture& base = ServiceFixture::Get();
  std::vector<std::vector<std::string>> columns;
  std::vector<ValidationService::NamedColumn> table;
  uint64_t rows = 0;

  TableFixture() {
    Rng rng(23);
    constexpr size_t kRows = 2000;
    constexpr size_t kDistinct = 64;
    // Only domains 0 and 1 reliably train a rule in ServiceFixture (the
    // JOB-id column abstains under the fixture's index), so the bench table
    // is built from those two.
    for (int d = 0; d < 2; ++d) {
      // Three low-cardinality columns per trained rule: 2000 rows drawn
      // from 64 distinct values each.
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<std::string> pool;
        {
          Rng pool_rng(100 + d * 10 + rep);
          const auto& batch = base.batches[static_cast<size_t>(d)];
          for (size_t i = 0; i < kDistinct; ++i) {
            pool.push_back(batch[pool_rng.Below(batch.size())]);
          }
        }
        std::vector<std::string> values;
        values.reserve(kRows);
        for (size_t r = 0; r < kRows; ++r) {
          values.push_back(pool[rng.Below(kDistinct)]);
        }
        columns.push_back(std::move(values));
      }
    }
    for (size_t c = 0; c < columns.size(); ++c) {
      table.push_back({base.names[c / 3], columns[c]});
      rows += columns[c].size();
    }
  }
  static const TableFixture& Get() {
    static TableFixture* fixture = new TableFixture();
    return *fixture;
  }
};

/// Whole-table serving: ONE snapshot, one tokenization per column, columns
/// fanned out over the service pool. Compare against BM_ServiceValidateNLoop
/// (same tokenize-once path, N independent calls) and
/// BM_ServiceValidateStreamLoop (the pre-table-API per-row path).
void BM_ServiceValidateAll(benchmark::State& state) {
  const auto& fx = TableFixture::Get();
  for (auto _ : state) {
    TableReport report = fx.base.service.ValidateAll(fx.table);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.rows));
}
BENCHMARK(BM_ServiceValidateAll)->UseRealTime();

/// The same table as N independent single-column Validate calls (one
/// snapshot lookup + tokenization each). ValidateAll must be no slower.
void BM_ServiceValidateNLoop(benchmark::State& state) {
  const auto& fx = TableFixture::Get();
  for (auto _ : state) {
    for (const auto& column : fx.table) {
      auto report = fx.base.service.Validate(column.name, column.values);
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.rows));
}
BENCHMARK(BM_ServiceValidateNLoop);

/// Baseline: the pre-ValidateAll serving path — per-column streaming
/// sessions tokenizing every row independently (no dedup). On a shared-
/// values table the tokenize-once paths above beat this by ~distinct/rows.
void BM_ServiceValidateStreamLoop(benchmark::State& state) {
  const auto& fx = TableFixture::Get();
  for (auto _ : state) {
    for (const auto& column : fx.table) {
      auto session = fx.base.service.OpenSession(column.name);
      if (!session.ok()) {
        state.SkipWithError("no rule for bench column");
        return;
      }
      session->Feed(column.values);
      benchmark::DoNotOptimize(session->Finish());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.rows));
}
BENCHMARK(BM_ServiceValidateStreamLoop);

/// Serving-over-loopback fixture: an avserved-style epoll Server on an
/// ephemeral 127.0.0.1 port, backed by its own trained ServiceFixture store.
/// Built once; the process exit reaps the server threads.
struct ServerFixture {
  ServiceFixture svc;
  net::Server server;
  uint16_t port = 0;

  ServerFixture()
      : server(&svc.service, [] {
          net::ServerConfig cfg;
          cfg.num_workers = 2;
          return cfg;
        }()) {
    if (!server.Start().ok()) std::abort();
    port = server.port();
  }
  static ServerFixture& Get() {
    static ServerFixture* fixture = new ServerFixture();
    return *fixture;
  }
};

/// Remote round-trip latency: one blocking client, one VALIDATE of a
/// 100-value column per iteration, over loopback TCP. The delta vs
/// BM_ServiceValidateThroughput at one thread is the full AVNET001 tax:
/// framing, syscalls, loop-thread dispatch and the reply path.
void BM_ServerRoundTrip(benchmark::State& state) {
  auto& fx = ServerFixture::Get();
  net::Client client;
  if (!client.Connect("127.0.0.1", fx.port).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  const std::string& name = fx.svc.names[0];
  const std::vector<std::string>& batch = fx.svc.batches[0];
  for (auto _ : state) {
    auto report = client.Validate(name, batch);
    if (!report.ok()) {
      state.SkipWithError("remote validate failed");
      return;
    }
    benchmark::DoNotOptimize(report->store_version);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerRoundTrip)->UseRealTime();

/// Saturation: N concurrent clients (one connection each) hammering the
/// server with VALIDATE calls; items/sec is validated columns per second
/// across all clients — the single-loop dispatch ceiling on this host.
void BM_ServerSaturation(benchmark::State& state) {
  auto& fx = ServerFixture::Get();
  net::Client client;
  if (!client.Connect("127.0.0.1", fx.port).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  // Only domains 0 and 1 reliably train a rule (see TableFixture).
  const size_t which = static_cast<size_t>(state.thread_index()) % 2;
  const std::string& name = fx.svc.names[which];
  const std::vector<std::string>& batch = fx.svc.batches[which];
  for (auto _ : state) {
    auto report = client.Validate(name, batch);
    if (!report.ok()) {
      state.SkipWithError("remote validate failed");
      return;
    }
    benchmark::DoNotOptimize(report->store_version);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerSaturation)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace av

BENCHMARK_MAIN();
