// google-benchmark microbenchmarks for the performance-critical primitives:
// tokenizer, matcher, P(v) enumeration, hypothesis enumeration, index
// lookups, Fisher's exact test and end-to-end FMDV training.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/auto_validate.h"
#include "core/stat_tests.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"
#include "pattern/generalize.h"
#include "pattern/hierarchy.h"
#include "pattern/matcher.h"

namespace av {
namespace {

const char* kDateValue = "9/12/2019 12:01:32 PM";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(kDateValue));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Match(benchmark::State& state) {
  const Pattern p = *Pattern::Parse(
      "<digit>+/<digit>+/<digit>{4} <digit>+:<digit>{2}:<digit>{2} "
      "<letter>{2}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(p, kDateValue));
  }
}
BENCHMARK(BM_Match);

void BM_MatchRejectEarly(benchmark::State& state) {
  const Pattern p = *Pattern::Parse("<digit>{4}-<digit>{2}-<digit>{2}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(p, kDateValue));
  }
}
BENCHMARK(BM_MatchRejectEarly);

void BM_EnumerateValuePatterns(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateValuePatterns("9:07:32", 100000));
  }
}
BENCHMARK(BM_EnumerateValuePatterns);

void BM_ColumnProfileBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(std::to_string(rng.Range(1, 12)) + "/" +
                     std::to_string(rng.Range(1, 28)) + "/2019");
  }
  GeneralizeConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColumnProfile::Build(values, cfg));
  }
}
BENCHMARK(BM_ColumnProfileBuild);

void BM_FisherExact(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(FisherExactTwoTailedP(3, 97, 45, 855));
  }
}
BENCHMARK(BM_FisherExact);

/// Shared fixture: a small lake and its index, built once.
struct TrainFixture {
  Corpus corpus;
  PatternIndex index;
  std::vector<std::string> query;

  TrainFixture() {
    corpus = GenerateLake(EnterpriseLakeConfig(600, 7));
    IndexerConfig cfg;
    index = BuildIndex(corpus, cfg);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      query.push_back("10.0." + std::to_string(rng.Range(0, 255)) + "." +
                      std::to_string(rng.Range(1, 254)));
    }
  }
  static const TrainFixture& Get() {
    static TrainFixture* fixture = new TrainFixture();
    return *fixture;
  }
};

void BM_IndexLookup(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  const std::string key = "<digit>+.<digit>+.<digit>+.<digit>+";
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.index.Lookup(key));
  }
}
BENCHMARK(BM_IndexLookup);

void BM_TrainFmdv(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Train(fx.query, Method::kFmdv));
  }
}
BENCHMARK(BM_TrainFmdv);

void BM_TrainFmdvVH(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Train(fx.query, Method::kFmdvVH));
  }
}
BENCHMARK(BM_TrainFmdvVH);

void BM_ValidateColumn(benchmark::State& state) {
  const auto& fx = TrainFixture::Get();
  AutoValidateOptions opts;
  opts.min_coverage = 3;
  AutoValidate engine(&fx.index, opts);
  auto rule = engine.Train(fx.query, Method::kFmdv);
  if (!rule.ok()) state.SkipWithError("rule not learnable");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateColumn(*rule, fx.query));
  }
}
BENCHMARK(BM_ValidateColumn);

}  // namespace
}  // namespace av

BENCHMARK_MAIN();
