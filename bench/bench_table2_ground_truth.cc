// Table 2: FMDV-VH quality under the programmatic evaluation vs the
// ground-truth-adjusted evaluation (the paper's manually-cleaned labels;
// here the generator's ground truth plays that role — DESIGN.md §1).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader(
      "Table 2: programmatic vs ground-truth evaluation (FMDV-VH)", flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  av::AutoValidate engine(&wb.index, flags.MakeOptions());

  av::EvalConfig programmatic;
  programmatic.num_threads = flags.threads;
  av::EvalConfig ground_truth = programmatic;
  ground_truth.ground_truth_mode = true;

  const auto prog = av::EvaluateMethod(
      wb.benchmark, "FMDV-VH",
      av::MakeAutoValidateLearner(&engine, av::Method::kFmdvVH),
      programmatic);
  const auto gt = av::EvaluateMethod(
      wb.benchmark, "FMDV-VH",
      av::MakeAutoValidateLearner(&engine, av::Method::kFmdvVH),
      ground_truth);

  std::printf("%-34s %10s %10s\n", "Evaluation Method", "precision",
              "recall");
  std::printf("%-34s %10.3f %10.3f\n", "Programmatic evaluation",
              prog.precision, prog.recall);
  std::printf("%-34s %10.3f %10.3f\n", "Generator ground-truth",
              gt.precision, gt.recall);
  std::printf(
      "\npaper (Table 2): programmatic 0.961 / 0.880 vs hand-curated\n"
      "0.963 / 0.915 — the programmatic evaluation slightly under-estimates\n"
      "true quality; the ground-truth row must dominate the programmatic\n"
      "row on both axes.\n");
  return 0;
}
