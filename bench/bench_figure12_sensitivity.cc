// Figure 12: sensitivity of the FMDV variants to (a) the FPR target r,
// (b) the coverage floor m, (c) the token limit tau, (d) the tolerance theta.
//
// Run with --param=r|m|tau|theta, or no flag to sweep all four.
#include "bench/bench_util.h"
#include "common/strings.h"

namespace av {
namespace {

void EvaluateAllVariants(const bench::Workbench& wb,
                         const AutoValidateOptions& opts, size_t threads,
                         const std::string& label) {
  AutoValidate engine(&wb.index, opts);
  EvalConfig cfg;
  cfg.num_threads = threads;
  std::printf("%-12s", label.c_str());
  for (Method m : {Method::kFmdv, Method::kFmdvV, Method::kFmdvH,
                   Method::kFmdvVH}) {
    const auto eval = EvaluateMethod(
        wb.benchmark, MethodName(m), MakeAutoValidateLearner(&engine, m),
        cfg);
    std::printf("  %5.3f/%5.3f", eval.precision, eval.recall);
  }
  std::printf("\n");
}

void SweepHeader() {
  std::printf("%-12s  %11s  %11s  %11s  %11s\n", "value", "FMDV",
              "FMDV-V", "FMDV-H", "FMDV-VH");
  std::printf("%-12s  %11s  %11s  %11s  %11s\n", "", "P/R", "P/R", "P/R",
              "P/R");
}

}  // namespace
}  // namespace av

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  // The sweeps re-evaluate all four variants per knob value; default to a
  // reduced scale so the full sweep stays in minutes.
  if (flags.columns == 4000) flags.columns = 2500;
  if (flags.cases == 100) flags.cases = 60;
  if (flags.m == 8) flags.m = 5;
  av::bench::PrintHeader("Figure 12: sensitivity analysis", flags);

  const bool all = flags.param.empty();

  // (a)/(b)/(d) reuse one index; (c) needs per-tau offline runs.
  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);

  if (all || flags.param == "r") {
    std::printf("\n-- Figure 12(a): FPR target r --\n");
    av::SweepHeader();
    for (double r : {0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.1}) {
      av::AutoValidateOptions opts = flags.MakeOptions();
      opts.fpr_target = r;
      av::EvaluateAllVariants(wb, opts, flags.threads,
                              av::StrFormat("r=%.2f", r));
    }
    std::printf("shape check: r trades precision against recall; FMDV-VH "
                "insensitive for r >= 0.02.\n");
  }

  if (all || flags.param == "m") {
    std::printf("\n-- Figure 12(b): coverage floor m --\n");
    av::SweepHeader();
    for (uint64_t m : {uint64_t{0}, uint64_t{10}, uint64_t{100}}) {
      av::AutoValidateOptions opts = flags.MakeOptions();
      opts.min_coverage = m;
      av::EvaluateAllVariants(wb, opts, flags.threads,
                              av::StrFormat("m=%llu",
                                            static_cast<unsigned long long>(m)));
    }
    std::printf("shape check: insensitive for small m. NOTE: at laptop scale "
                "m=100 exceeds tail-domain\ncolumn counts, so recall drops "
                "there — an expected scale artifact (EXPERIMENTS.md); the\n"
                "paper's corpus has thousands of columns per domain.\n");
  }

  if (all || flags.param == "tau") {
    std::printf("\n-- Figure 12(c): token limit tau --\n");
    av::SweepHeader();
    for (size_t tau : {size_t{8}, size_t{11}, size_t{13}}) {
      av::bench::Flags tau_flags = flags;
      tau_flags.tau = tau;
      const av::bench::Workbench tau_wb =
          av::bench::Workbench::Build(tau_flags);
      av::AutoValidateOptions opts = tau_flags.MakeOptions();
      av::EvaluateAllVariants(tau_wb, opts, flags.threads,
                              av::StrFormat("tau=%zu", tau));
    }
    std::printf("shape check: vertical-cut variants insensitive to small "
                "tau; FMDV/FMDV-H lose recall at tau=8.\n");
  }

  if (all || flags.param == "theta") {
    std::printf("\n-- Figure 12(d): non-conforming tolerance theta --\n");
    av::SweepHeader();
    for (double theta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      av::AutoValidateOptions opts = flags.MakeOptions();
      opts.theta = theta;
      av::EvaluateAllVariants(wb, opts, flags.threads,
                              av::StrFormat("theta=%.1f", theta));
    }
    std::printf("shape check: FMDV-H/-VH insensitive to theta unless it is "
                "very small.\n");
  }
  return 0;
}
