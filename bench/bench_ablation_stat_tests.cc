// Ablation (Section 4): the two-sample homogeneity test at validation time —
// Fisher's exact test vs chi-squared with Yates correction vs the naive
// "flag on any increase" threshold the paper warns against.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  if (flags.columns == 4000) flags.columns = 2500;
  if (flags.cases == 100) flags.cases = 60;
  if (flags.m == 8) flags.m = 5;
  av::bench::PrintHeader("Ablation: distributional test at validation time",
                         flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);

  av::EvalConfig cfg;
  cfg.num_threads = flags.threads;
  std::vector<av::MethodEvaluation> evals;
  for (const auto& [test, label] :
       {std::pair<av::HomogeneityTest, const char*>{
            av::HomogeneityTest::kFisherExact, "fisher"},
        std::pair<av::HomogeneityTest, const char*>{
            av::HomogeneityTest::kChiSquaredYates, "chi2-yates"},
        std::pair<av::HomogeneityTest, const char*>{
            av::HomogeneityTest::kNaiveThreshold, "naive"}}) {
    av::AutoValidateOptions opts = flags.MakeOptions();
    opts.test = test;
    av::AutoValidate engine(&wb.index, opts);
    evals.push_back(av::EvaluateMethod(
        wb.benchmark, label,
        av::MakeAutoValidateLearner(&engine, av::Method::kFmdvVH), cfg));
  }
  av::PrintPrecisionRecallTable(evals);
  std::printf(
      "\nshape check: Fisher and chi-squared perform near-identically (the\n"
      "paper found 'little difference'); the naive threshold loses precision\n"
      "by alarming on insignificant theta increases.\n");
  return 0;
}
