// Ablation (Section 3): the MSA verification step of vertical cuts —
// quality and latency with and without the greedy progressive alignment
// (on homogeneous machine-generated columns the alignment is trivially
// optimal, so quality must not change; the check costs a little time).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  if (flags.columns == 4000) flags.columns = 2500;
  if (flags.cases == 100) flags.cases = 60;
  if (flags.m == 8) flags.m = 5;
  av::bench::PrintHeader("Ablation: MSA verification in vertical cuts",
                         flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);

  av::EvalConfig cfg;
  cfg.num_threads = 1;  // clean latency comparison
  std::vector<av::MethodEvaluation> evals;
  for (const bool skip : {false, true}) {
    av::AutoValidateOptions opts = flags.MakeOptions();
    opts.vertical_skip_msa = skip;
    av::AutoValidate engine(&wb.index, opts);
    evals.push_back(av::EvaluateMethod(
        wb.benchmark, skip ? "VH(no-MSA)" : "VH(MSA)",
        av::MakeAutoValidateLearner(&engine, av::Method::kFmdvVH), cfg));
  }
  av::PrintPrecisionRecallTable(evals);
  std::printf(
      "\nshape check: identical precision/recall (homogeneous columns align\n"
      "trivially, matching the paper's observation that greedy MSA is\n"
      "optimal there); the MSA pass adds only a small latency overhead.\n");
  return 0;
}
