// Figure 13: distribution of patterns in the offline index — (a) by token
// count, (b) by column frequency (power-law) — plus the "head domain
// patterns" analysis of Section 5.3 (the Figure-3 style common domains).
#include "bench/bench_util.h"
#include "index/analysis.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader("Figure 13: offline-index pattern distributions",
                         flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  std::printf("index: %zu distinct patterns from %zu columns (%.1f MB)\n\n",
              wb.index.size(), wb.index_report.columns_total,
              static_cast<double>(wb.index.ApproxBytes()) / 1e6);

  const av::IndexDistributions dist = av::AnalyzeIndex(wb.index);
  av::PrintIndexDistributions(dist);

  std::printf("\n# Section 5.3 'head' domain patterns "
              "(coverage-ranked, FPR <= 0.02)\n");
  std::printf("%-52s %10s %8s\n", "pattern", "columns", "FPR");
  for (const auto& hp : av::HeadPatterns(wb.index, 25, 0.02)) {
    std::printf("%-52s %10llu %8.4f\n", hp.pattern.c_str(),
                static_cast<unsigned long long>(hp.coverage), hp.fpr);
  }
  std::printf(
      "\nshape check (paper Fig. 13): pattern frequency is power-law-like —\n"
      "few head patterns cover thousands of columns, a long tail covers\n"
      "almost none; head patterns are recognizable data domains (Fig. 3).\n");
  return 0;
}
