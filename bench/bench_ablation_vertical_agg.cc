// Ablation (Section 3): Equation (8)'s pessimistic sum of segment FPRs vs
// the optimistic max aggregation the paper mentions and rejects.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  if (flags.columns == 4000) flags.columns = 2500;
  if (flags.cases == 100) flags.cases = 60;
  if (flags.m == 8) flags.m = 5;
  av::bench::PrintHeader(
      "Ablation: vertical objective — sum vs max of segment FPRs", flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);

  av::EvalConfig cfg;
  cfg.num_threads = flags.threads;
  std::vector<av::MethodEvaluation> evals;
  for (const bool use_max : {false, true}) {
    av::AutoValidateOptions opts = flags.MakeOptions();
    opts.vertical_use_max = use_max;
    av::AutoValidate engine(&wb.index, opts);
    evals.push_back(av::EvaluateMethod(
        wb.benchmark, use_max ? "FMDV-VH(max)" : "FMDV-VH(sum)",
        av::MakeAutoValidateLearner(&engine, av::Method::kFmdvVH), cfg));
  }
  av::PrintPrecisionRecallTable(evals);
  std::printf(
      "\nshape check: the max aggregation admits riskier segmentations\n"
      "(higher summed FPR within the same target r), so precision can drop;\n"
      "the paper found the pessimistic sum more effective.\n");
  return 0;
}
