#!/bin/sh
# Runs the perf-tracking benches and assembles BENCH_micro.json so future
# PRs have a trajectory to compare against.
#
# Usage: bench/run_bench.sh [build_dir] [out_json]
#   build_dir  directory containing bench_micro / bench_offline_indexing
#              (default: build)
#   out_json   output path (default: BENCH_micro.json in the repo root)
#
# Emits: {machine, git_rev, micro: <google-benchmark json, key subset>,
#         offline_indexing: <per-tau wall-clock + patterns/sec>,
#         build_index_simd: <interleaved dispatch-vs-SWAR medians>}
#
# The micro section includes the per-arm tokenizer benches
# (BM_TokenizeMixedColumn_<arm> / BM_TokenCountMixedColumn_<arm>) for every
# dispatch arm the machine can run. The build_index_simd section judges the
# SIMD layer end-to-end the way docs/BENCHMARKING.md prescribes: 3
# interleaved A/B pairs of BM_BuildIndexSmall (resolver's best arm vs
# AV_SIMD=swar), medians of each, so layout/thermal drift hits both sides.
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_micro.json}"
TMP_MICRO="$(mktemp)"
TMP_OFF150="$(mktemp)"
TMP_OFF800="$(mktemp)"
TMP_SIMD="$(mktemp)"
trap 'rm -f "$TMP_MICRO" "$TMP_OFF150" "$TMP_OFF800" "$TMP_SIMD"' EXIT

FILTER='BM_MatchColumnScalar|BM_MatchColumnBatched|BM_Match$|BM_Tokenize$|BM_TokenizeInto|BM_TokenCount|BM_TokenizeMixedColumn|BM_TokenizedColumnBuild|BM_PatternKey|BM_IndexLookup|BM_IndexLookupByKey|BM_IndexColumn|BM_BuildIndexSmall|BM_BuildIndexSpill|BM_TrainFmdv$|BM_ValidateColumn|BM_ValidateColumnView|BM_ServiceValidateThroughput|BM_ServiceValidateAll|BM_ServiceValidateNLoop|BM_ServiceValidateStreamLoop|BM_ServerRoundTrip|BM_ServerSaturation|BM_BuildIndexJsonl|BM_BuildIndexAvcol'

"$BUILD_DIR/bench_micro" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json >"$TMP_MICRO"

"$BUILD_DIR/bench_offline_indexing" --columns=150 --seed=7 \
  --json="$TMP_OFF150" >/dev/null
"$BUILD_DIR/bench_offline_indexing" --columns=800 --seed=7 \
  --json="$TMP_OFF800" >/dev/null

# Interleaved A/B: the whole-job index build under the dispatch resolver's
# pick vs the SWAR baseline, alternating so slow drift cancels. One
# "arm real_time_ns" line per run lands in TMP_SIMD.
: >"$TMP_SIMD"
for rep in 1 2 3; do
  for side in dispatch swar; do
    if [ "$side" = swar ]; then
      AV_SIMD=swar "$BUILD_DIR/bench_micro" \
        --benchmark_filter='BM_BuildIndexSmall' \
        --benchmark_min_time=0.2 --benchmark_format=json
    else
      "$BUILD_DIR/bench_micro" \
        --benchmark_filter='BM_BuildIndexSmall' \
        --benchmark_min_time=0.2 --benchmark_format=json
    fi | python3 -c 'import json,sys; b=json.load(sys.stdin)["benchmarks"][0]; print(sys.argv[1], b["real_time"])' "$side" >>"$TMP_SIMD"
  done
done

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

python3 - "$TMP_MICRO" "$TMP_OFF150" "$TMP_OFF800" "$TMP_SIMD" "$OUT" "$GIT_REV" <<'EOF'
import json, platform, statistics, sys

micro_path, off150_path, off800_path, simd_path, out_path, git_rev = sys.argv[1:7]
with open(micro_path) as f:
    micro = json.load(f)
with open(off150_path) as f:
    off150 = json.load(f)
with open(off800_path) as f:
    off800 = json.load(f)

benches = {
    b["name"]: {
        "real_time_ns": b["real_time"],
        **({"items_per_second": b["items_per_second"]}
           if "items_per_second" in b else {}),
    }
    for b in micro.get("benchmarks", [])
}

simd_runs = {}
with open(simd_path) as f:
    for line in f:
        side, ns = line.split()
        simd_runs.setdefault(side, []).append(float(ns))
simd = {}
if simd_runs:
    med = {side: statistics.median(v) for side, v in simd_runs.items()}
    simd = {
        "bench": "BM_BuildIndexSmall (interleaved medians of 3 A/B pairs)",
        "dispatch_median_ns": med.get("dispatch"),
        "swar_median_ns": med.get("swar"),
        "dispatch_speedup": (med["swar"] / med["dispatch"]
                             if med.get("dispatch") and med.get("swar")
                             else None),
    }

out = {
    "git_rev": git_rev,
    "machine": platform.platform(),
    "micro": benches,
    "build_index_simd": simd,
    "offline_indexing_150col": off150,
    "offline_indexing_800col": off800,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
EOF
