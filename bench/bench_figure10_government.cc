// Figure 10(b): precision/recall of the competitive methods on the
// government benchmark B_G (smaller, dirtier corpus; 100 values/column).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  flags.government = true;
  if (flags.columns == 4000) flags.columns = 2000;  // default gov scale
  if (flags.cases == 100) flags.cases = 80;
  if (flags.m == 8) flags.m = 5;
  av::bench::PrintHeader(
      "Figure 10(b): Recall vs Precision, government benchmark", flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  av::bench::MethodRoster roster = av::bench::MethodRoster::Build(wb, flags);

  const auto subset = wb.benchmark.SyntacticSubset();
  std::printf("benchmark: %zu cases, %zu with syntactic patterns\n\n",
              wb.benchmark.cases.size(), subset.size());

  av::EvalConfig cfg;
  cfg.num_threads = flags.threads;
  std::vector<av::MethodEvaluation> evals;
  for (const auto& [name, learner] : roster.methods) {
    evals.push_back(av::EvaluateMethod(wb.benchmark, name, learner, cfg));
  }
  av::PrintPrecisionRecallTable(evals);
  std::printf(
      "\nshape check (paper Fig. 10b): all methods lower than on the\n"
      "enterprise benchmark (smaller, dirtier corpus), FMDV variants still\n"
      "dominate the baselines.\n");
  return 0;
}
