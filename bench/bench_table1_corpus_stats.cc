// Table 1: characteristics of the data corpora (T_E and T_G).
//
// Regenerates the paper's table over the synthetic enterprise and government
// lakes: file/column counts and value/distinct statistics per column. The
// paper's absolute scale (7.2M columns, 1TB) is reproduced in *shape* only:
// the enterprise lake has larger, more repetitive columns; the government
// lake is smaller with fewer values per column.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader("Table 1: characteristics of data corpora", flags);

  const av::Corpus enterprise =
      av::GenerateLake(av::EnterpriseLakeConfig(flags.columns, flags.seed));
  const av::Corpus government = av::GenerateLake(
      av::GovernmentLakeConfig(flags.columns / 2, flags.seed + 1));

  std::printf("%-16s %10s %10s %22s %24s\n", "Corpus", "files", "cols",
              "avg col values (sd)", "avg col distinct (sd)");
  for (const auto& [name, corpus] :
       {std::pair<const char*, const av::Corpus*>{"Enterprise (TE)",
                                                  &enterprise},
        std::pair<const char*, const av::Corpus*>{"Government (TG)",
                                                  &government}}) {
    const av::CorpusStats s = corpus->ComputeStats();
    std::printf("%-16s %10zu %10zu %12.0f (%6.0f) %14.0f (%6.0f)\n", name,
                s.num_tables, s.num_columns, s.avg_values_per_column,
                s.stddev_values_per_column, s.avg_distinct_per_column,
                s.stddev_distinct_per_column);
  }
  std::printf(
      "\npaper (Table 1): TE 507K files, 7.2M cols, 8945 (17778) values,\n"
      "                 1543 (7219) distinct; TG 29K files, 628K cols,\n"
      "                 305 (331) values, 46 (119) distinct.\n"
      "shape check: enterprise columns larger & more repetitive than\n"
      "government columns.\n");
  return 0;
}
