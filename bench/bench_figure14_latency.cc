// Figure 14: per-query-column latency (milliseconds) of the FMDV variants
// (offline index) vs the pattern profilers vs FMDV without the index.
#include <algorithm>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader("Figure 14: latency per query column (ms)", flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  av::bench::MethodRoster roster =
      av::bench::MethodRoster::Build(wb, flags,
                                     /*include_slow_baselines=*/false);

  // Latency is measured inside the evaluator (train time per case).
  av::EvalConfig cfg;
  cfg.num_threads = 1;  // serial: clean per-query latency numbers
  std::printf("%-14s %14s\n", "method", "avg ms / query");
  for (const char* want :
       {"FMDV", "FMDV-V", "FMDV-H", "FMDV-VH", "PWheel", "FlashProfile",
        "XSystem", "SSIS", "Grok"}) {
    for (const auto& [name, learner] : roster.methods) {
      if (name != want) continue;
      const auto eval = av::EvaluateMethod(wb.benchmark, name, learner, cfg);
      std::printf("%-14s %14.3f\n", name.c_str(), eval.avg_train_ms);
    }
  }

  // FMDV (no-index): full corpus scan per query — run on a few cases only.
  const size_t scan_cases = std::min<size_t>(3, wb.benchmark.cases.size());
  double scan_ms = 0;
  size_t scanned = 0;
  const av::AutoValidateOptions opts = flags.MakeOptions();
  for (size_t i = 0; i < wb.benchmark.cases.size() && scanned < scan_cases;
       ++i) {
    const auto& c = wb.benchmark.cases[i];
    if (!c.has_syntactic_pattern) continue;
    av::Stopwatch sw;
    auto rule = av::TrainFmdvNoIndex(wb.corpus, c.train, opts);
    scan_ms += sw.ElapsedMillis();
    ++scanned;
  }
  if (scanned > 0) {
    std::printf("%-14s %14.3f   (avg over %zu cases)\n", "FMDV(no-index)",
                scan_ms / static_cast<double>(scanned), scanned);
  }

  std::printf(
      "\nshape check (paper Fig. 14): indexed FMDV variants are orders of\n"
      "magnitude faster than profilers (6-7 s/col in the paper) and than the\n"
      "no-index scan; FMDV-VH stays interactive (<100 ms in the paper).\n");
  return 0;
}
