// Figure 11: case-by-case F1 on randomly sampled cases, FMDV-VH (m=100,
// r=0.1 in the paper; scaled m here) vs PWheel / SSIS / Grok / XSystem,
// sorted by FMDV-VH's F1.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  if (flags.columns == 4000) flags.columns = 3000;
  av::bench::PrintHeader("Figure 11: case-by-case F1 (sorted by FMDV-VH)",
                         flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  av::bench::MethodRoster roster =
      av::bench::MethodRoster::Build(wb, flags,
                                     /*include_slow_baselines=*/false);

  av::EvalConfig cfg;
  cfg.num_threads = flags.threads;
  std::vector<av::MethodEvaluation> evals;
  for (const char* want : {"FMDV-VH", "PWheel", "SSIS", "Grok", "XSystem"}) {
    for (const auto& [name, learner] : roster.methods) {
      if (name == want) {
        evals.push_back(av::EvaluateMethod(wb.benchmark, name, learner, cfg));
      }
    }
  }
  av::PrintCaseByCaseF1(evals, 100);
  std::printf(
      "\nshape check (paper Fig. 11): FMDV-VH dominates case-by-case; its\n"
      "failures concentrate on flexibly-formatted domains (e.g. variable\n"
      "URLs) that the ladder grammar cannot cover.\n");
  return 0;
}
