// Shared scaffolding for the experiment harness binaries: flag parsing,
// corpus/index construction, and the method roster of Section 5.2.
//
// All benches accept:
//   --columns=N   lake size (default 4000 enterprise / 2000 government)
//   --cases=N     benchmark query columns (default 100 / 80)
//   --seed=N      generator seed
//   --threads=N   worker threads (default: hardware)
//   --m=N --r=X --tau=N --theta=X   FMDV knobs
//   --json=PATH   also write the bench's key metrics as JSON to PATH
//                 (bench_offline_indexing emits per-tau wall-clock,
//                 patterns/sec and index size; used by bench/run_bench.sh
//                 to assemble BENCH_micro.json for the perf trajectory)
// Defaults are scaled for a laptop-class machine; the paper's absolute sizes
// (7.2M columns) are out of scope per DESIGN.md §1, but every knob scales.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dictionary.h"
#include "baselines/flashprofile.h"
#include "baselines/grok.h"
#include "baselines/potters_wheel.h"
#include "baselines/schema_matching.h"
#include "baselines/ssis.h"
#include "baselines/xsystem.h"
#include "common/timer.h"
#include "core/auto_validate.h"
#include "corpus/inverted_index.h"
#include "eval/benchmark_gen.h"
#include "eval/evaluator.h"
#include "eval/reports.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"

namespace av::bench {

struct Flags {
  size_t columns = 4000;
  size_t cases = 100;
  uint64_t seed = 42;
  size_t threads = 0;
  uint64_t m = 8;
  double r = 0.1;
  size_t tau = 13;
  double theta = 0.1;
  std::string param;  // for the sensitivity bench
  std::string json;   // when set, benches also write key metrics here
  bool government = false;

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        const size_t n = std::strlen(prefix);
        return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
      };
      if (const char* v = val("--columns=")) f.columns = std::strtoull(v, nullptr, 10);
      else if (const char* v2 = val("--cases=")) f.cases = std::strtoull(v2, nullptr, 10);
      else if (const char* v3 = val("--seed=")) f.seed = std::strtoull(v3, nullptr, 10);
      else if (const char* v4 = val("--threads=")) f.threads = std::strtoull(v4, nullptr, 10);
      else if (const char* v5 = val("--m=")) f.m = std::strtoull(v5, nullptr, 10);
      else if (const char* v6 = val("--r=")) f.r = std::strtod(v6, nullptr);
      else if (const char* v7 = val("--tau=")) f.tau = std::strtoull(v7, nullptr, 10);
      else if (const char* v8 = val("--theta=")) f.theta = std::strtod(v8, nullptr);
      else if (const char* v9 = val("--param=")) f.param = v9;
      else if (const char* v10 = val("--json=")) f.json = v10;
      else if (std::strcmp(a, "--government") == 0) f.government = true;
      else if (std::strcmp(a, "--help") == 0) {
        std::printf("flags: --columns= --cases= --seed= --threads= --m= --r= "
                    "--tau= --theta= --param= --json= --government\n");
        std::exit(0);
      }
    }
    return f;
  }

  AutoValidateOptions MakeOptions() const {
    AutoValidateOptions opts;
    opts.fpr_target = r;
    opts.min_coverage = m;
    opts.theta = theta;
    opts.gen.max_tokens = tau;
    return opts;
  }
};

/// Lake + index + benchmark, built once per binary.
struct Workbench {
  Corpus corpus;
  PatternIndex index;
  Benchmark benchmark;
  IndexerReport index_report;
  double lake_seconds = 0;

  static Workbench Build(const Flags& flags) {
    Workbench wb;
    Stopwatch lake_timer;
    const LakeConfig lake_cfg =
        flags.government
            ? GovernmentLakeConfig(flags.columns, flags.seed)
            : EnterpriseLakeConfig(flags.columns, flags.seed);
    wb.corpus = GenerateLake(lake_cfg);
    wb.lake_seconds = lake_timer.ElapsedSeconds();

    IndexerConfig icfg;
    icfg.num_threads = flags.threads;
    icfg.gen.max_tokens = flags.tau;
    wb.index = BuildIndex(wb.corpus, icfg, &wb.index_report);

    BenchmarkConfig bcfg;
    bcfg.num_cases = flags.cases;
    bcfg.max_values = flags.government ? 100 : 1000;
    bcfg.min_values = flags.government ? 20 : 40;
    bcfg.seed = flags.seed + 1;
    wb.benchmark = MakeBenchmark(wb.corpus, bcfg,
                                 DomainsForProfile(lake_cfg.profile));
    return wb;
  }
};

/// The full method roster of Figure 10 (AV variants + baselines).
struct MethodRoster {
  std::unique_ptr<AutoValidate> engine;
  std::vector<std::pair<std::string, CaseLearner>> methods;

  // Owned baseline learners.
  std::vector<std::unique_ptr<RuleLearner>> learners;
  std::unique_ptr<ValueInvertedIndex> value_index;

  static MethodRoster Build(const Workbench& wb, const Flags& flags,
                            bool include_slow_baselines = true) {
    MethodRoster r;
    r.engine =
        std::make_unique<AutoValidate>(&wb.index, flags.MakeOptions());

    r.methods.emplace_back(
        "FMDV", MakeAutoValidateLearner(r.engine.get(), Method::kFmdv));
    r.methods.emplace_back(
        "FMDV-V", MakeAutoValidateLearner(r.engine.get(), Method::kFmdvV));
    r.methods.emplace_back(
        "FMDV-H", MakeAutoValidateLearner(r.engine.get(), Method::kFmdvH));
    r.methods.emplace_back(
        "FMDV-VH", MakeAutoValidateLearner(r.engine.get(), Method::kFmdvVH));

    auto add = [&](std::unique_ptr<RuleLearner> learner) {
      r.methods.emplace_back(learner->Name(),
                             MakeBaselineLearner(learner.get()));
      r.learners.push_back(std::move(learner));
    };
    add(std::make_unique<TfdvLearner>());
    add(std::make_unique<DeequCatLearner>());
    add(std::make_unique<DeequFraLearner>());
    add(std::make_unique<PottersWheelLearner>());
    add(std::make_unique<SsisLearner>());
    add(std::make_unique<XSystemLearner>());
    add(std::make_unique<FlashProfileLearner>());
    add(std::make_unique<GrokLearner>());
    if (include_slow_baselines) {
      r.value_index = std::make_unique<ValueInvertedIndex>(wb.corpus);
      add(std::make_unique<SchemaMatchInstanceLearner>(
          &wb.corpus, r.value_index.get(), 1));
      add(std::make_unique<SchemaMatchInstanceLearner>(
          &wb.corpus, r.value_index.get(), 10));
      add(std::make_unique<SchemaMatchPatternLearner>(
          &wb.corpus, SchemaMatchPatternLearner::Mode::kMajority));
      add(std::make_unique<SchemaMatchPatternLearner>(
          &wb.corpus, SchemaMatchPatternLearner::Mode::kPlurality));
    }
    return r;
  }
};

inline void PrintHeader(const char* title, const Flags& flags) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("lake: %s, columns=%zu, cases=%zu, seed=%llu\n",
              flags.government ? "government" : "enterprise", flags.columns,
              flags.cases, static_cast<unsigned long long>(flags.seed));
  std::printf("FMDV: r=%.3f m=%llu tau=%zu theta=%.2f\n", flags.r,
              static_cast<unsigned long long>(flags.m), flags.tau,
              flags.theta);
  std::printf("==================================================\n");
}

}  // namespace av::bench
