// Figure 15: impact of schema drift on the 11 Kaggle-style tasks, with and
// without data validation.
//
// For each task: (1) model quality on clean test data (normalized to 100%);
// (2) quality when the two categorical attributes are silently swapped in
// the test data; (3) whether FMDV-VH rules trained on the training columns
// flag the swapped test columns (detection restores the clean pipeline).
#include "bench/bench_util.h"
#include "ml/kaggle_sim.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader("Figure 15: schema-drift impact on ML tasks", flags);

  // The validation rules are trained against the enterprise lake index.
  av::bench::Flags lake_flags = flags;
  lake_flags.columns = std::min<size_t>(flags.columns, 2500);
  const av::bench::Workbench wb = av::bench::Workbench::Build(lake_flags);
  av::AutoValidateOptions opts = flags.MakeOptions();
  opts.min_coverage = std::min<uint64_t>(opts.min_coverage, 5);
  const av::AutoValidate engine(&wb.index, opts);

  const auto tasks = av::MakeKaggleTasks(flags.seed + 100);

  std::printf("%-14s %5s %10s %12s %12s %10s %12s\n", "task", "type",
              "clean", "drift", "drift-norm%", "detected", "with-valid%");
  size_t detected_count = 0;
  size_t false_positives = 0;
  for (const auto& task : tasks) {
    const double clean = av::TrainAndScore(task, task.test);
    const av::Dataset drifted_test = av::WithSchemaDrift(task);
    const double drifted = av::TrainAndScore(task, drifted_test);

    // Train one rule per swapped categorical attribute; validate the test
    // columns at their (drifted) positions.
    bool drift_flagged = false;
    bool clean_flagged = false;
    for (size_t f : {task.swap_a, task.swap_b}) {
      auto rule = engine.Train(task.train.features[f].cat_values,
                               av::Method::kFmdvVH);
      if (!rule.ok()) continue;
      if (engine.Validate(*rule, drifted_test.features[f].cat_values)
              .flagged) {
        drift_flagged = true;
      }
      if (engine.Validate(*rule, task.test.features[f].cat_values).flagged) {
        clean_flagged = true;  // would be a false positive
      }
    }
    if (drift_flagged) ++detected_count;
    if (clean_flagged) ++false_positives;

    const double norm = clean > 0 ? 100.0 * drifted / clean : 0;
    const double with_validation = drift_flagged ? 100.0 : norm;
    std::printf("%-14s %5s %10.3f %12.3f %11.1f%% %10s %11.1f%%\n",
                task.name.c_str(), task.classification ? "clf" : "reg",
                clean, drifted, norm, drift_flagged ? "yes" : "NO",
                with_validation);
  }
  std::printf(
      "\ndetected %zu / %zu drifts, %zu false positives on clean data\n",
      detected_count, tasks.size(), false_positives);
  std::printf(
      "shape check (paper Fig. 15): drift drops normalized quality (up to\n"
      "~78%% in the paper); validation detects 8 of 11 drifts (all except\n"
      "WestNile, HomeDepot, WalmartTrips, whose swapped attributes share a\n"
      "syntactic domain) with no false positives.\n");
  return 0;
}
