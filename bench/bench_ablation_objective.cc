// Ablation (Section 2.3): FMDV's conservative FPR-minimizing objective vs
// the CMDV alternative (coverage-minimizing). The paper reports that FMDV
// "is more effective in practice"; this bench regenerates that comparison.
#include "bench/bench_util.h"
#include "common/strings.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  if (flags.columns == 4000) flags.columns = 2500;
  if (flags.cases == 100) flags.cases = 60;
  if (flags.m == 8) flags.m = 5;
  av::bench::PrintHeader("Ablation: FMDV (min FPR) vs CMDV (min coverage)",
                         flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);

  av::EvalConfig cfg;
  cfg.num_threads = flags.threads;

  std::vector<av::MethodEvaluation> evals;
  // Under a tight FPR cap both objectives select from the same small
  // feasible set; the divergence the paper observed appears as r relaxes
  // and CMDV starts picking narrow patterns with real false-alarm mass.
  for (const double r : {flags.r, 0.3, 0.5}) {
    av::AutoValidateOptions opts = flags.MakeOptions();
    opts.fpr_target = r;
    av::AutoValidate engine(&wb.index, opts);
    evals.push_back(av::EvaluateMethod(
        wb.benchmark, av::StrFormat("FMDV(r=%.1f)", r),
        av::MakeAutoValidateLearner(&engine, av::Method::kFmdv), cfg));
    evals.push_back(av::EvaluateMethod(
        wb.benchmark, av::StrFormat("CMDV(r=%.1f)", r),
        [&engine](const av::BenchmarkCase& c)
            -> std::unique_ptr<av::ColumnValidator> {
          auto rule = engine.TrainCmdv(c.train);
          if (!rule.ok()) return nullptr;
          class Wrapper : public av::ColumnValidator {
           public:
            explicit Wrapper(av::ValidationRule r) : rule_(std::move(r)) {}
            bool Flag(const std::vector<std::string>& v) const override {
              return av::ValidateColumn(rule_, v).flagged;
            }
            std::string Describe() const override {
              return rule_.Describe();
            }

           private:
            av::ValidationRule rule_;
          };
          return std::make_unique<Wrapper>(std::move(rule).value());
        },
        cfg));
  }

  av::PrintPrecisionRecallTable(evals);
  std::printf(
      "\nshape check: at the paper's tight r both objectives coincide (the\n"
      "FPR cap prunes the dangerous narrow patterns); as r relaxes, CMDV\n"
      "admits high-FPR restrictive patterns and loses precision while\n"
      "conservative FMDV stays put — the paper found FMDV more effective.\n");
  return 0;
}
