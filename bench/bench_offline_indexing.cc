// Section 5 (implementation note): offline indexing cost. The paper's job
// processes 7M columns / 1TB in under 3 hours on a cluster, with wall-clock
// ranging from ~1h (tau=8) to ~3h (tau=13). This bench reports the same
// tau scaling at laptop scale, plus the index-size-vs-corpus-size ratio of
// Section 2.4 ("a 1TB corpus yields an index below 1GB").
//
// With --json=PATH it also emits per-tau {seconds, patterns, patterns/sec,
// index entries, index MB} for bench/run_bench.sh's BENCH_micro.json.
#include <string>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  av::bench::PrintHeader("Offline indexing: wall-clock vs tau", flags);

  const av::LakeConfig lake_cfg =
      av::EnterpriseLakeConfig(flags.columns, flags.seed);
  const av::Corpus corpus = av::GenerateLake(lake_cfg);
  const av::CorpusStats stats = corpus.ComputeStats();
  std::printf("corpus: %zu columns, %.1f MB of values\n\n", stats.num_columns,
              static_cast<double>(stats.total_bytes) / 1e6);

  std::string json = "{\n  \"columns\": " + std::to_string(stats.num_columns) +
                     ",\n  \"seed\": " + std::to_string(flags.seed) +
                     ",\n  \"runs\": [\n";
  std::printf("%-8s %12s %14s %16s %14s\n", "tau", "seconds",
              "patterns", "distinct", "index MB");
  bool first = true;
  for (size_t tau : {size_t{8}, size_t{11}, size_t{13}}) {
    av::IndexerConfig cfg;
    cfg.num_threads = flags.threads;
    cfg.gen.max_tokens = tau;
    av::IndexerReport report;
    const av::PatternIndex index = av::BuildIndex(corpus, cfg, &report);
    std::printf("%-8zu %12.2f %14llu %16zu %14.2f\n", tau, report.seconds,
                static_cast<unsigned long long>(report.patterns_emitted),
                index.size(),
                static_cast<double>(index.ApproxBytes()) / 1e6);
    const double pps = report.seconds > 0
                           ? static_cast<double>(report.patterns_emitted) /
                                 report.seconds
                           : 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"tau\": %zu, \"seconds\": %.4f, \"patterns\": %llu, "
                  "\"patterns_per_sec\": %.0f, \"distinct\": %zu, "
                  "\"index_mb\": %.2f}",
                  tau, report.seconds,
                  static_cast<unsigned long long>(report.patterns_emitted),
                  pps, index.size(),
                  static_cast<double>(index.ApproxBytes()) / 1e6);
    if (!first) json += ",\n";
    json += buf;
    first = false;
  }
  json += "\n  ],\n";

  // Out-of-core run (tau = default): chunk indexes spill to AVSPILL01 runs
  // and the reduce is the k-way streaming merge. Reports the spill tax paid
  // for bounded chunk-index residency; saved bytes are identical to the
  // in-memory path (golden-tested), so only wall-clock and peak residency
  // differ.
  {
    av::IndexerConfig cfg;
    cfg.num_threads = flags.threads;
    cfg.build.memory_budget_bytes = 32ull << 20;
    av::IndexerReport report;
    const av::PatternIndex index = av::BuildIndex(corpus, cfg, &report);
    std::printf("%-8s %12.2f %14llu %16zu %14.2f  (out-of-core: %zu runs, "
                "peak %.1f MB)\n",
                "spill", report.seconds,
                static_cast<unsigned long long>(report.patterns_emitted),
                index.size(),
                static_cast<double>(index.ApproxBytes()) / 1e6,
                report.spill_runs,
                static_cast<double>(report.peak_chunk_index_bytes) / 1e6);
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "  \"spill\": {\"memory_budget_mb\": %.0f, \"seconds\": "
                  "%.4f, \"patterns\": %llu, \"spill_runs\": %zu, "
                  "\"merge_passes\": %zu, \"spill_mb\": %.2f, "
                  "\"peak_chunk_index_mb\": %.2f}\n",
                  static_cast<double>(cfg.build.memory_budget_bytes) / 1e6,
                  report.seconds,
                  static_cast<unsigned long long>(report.patterns_emitted),
                  report.spill_runs, report.merge_passes,
                  static_cast<double>(report.spill_bytes) / 1e6,
                  static_cast<double>(report.peak_chunk_index_bytes) / 1e6);
    json += buf;
  }
  json += "}\n";
  if (!flags.json.empty()) {
    std::FILE* out = std::fopen(flags.json.c_str(), "w");
    if (out != nullptr) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    }
  }
  std::printf(
      "\nshape check: indexing cost grows with tau (the paper: ~1h at tau=8\n"
      "to ~3h at tau=13 on 10 nodes); the index is orders of magnitude\n"
      "smaller than the corpus.\n");
  return 0;
}
