// Table 3: the user study — programmers hand-writing validation regexes vs
// FMDV-VH, on 20 sampled test columns.
//
// The three human rows cannot be re-run and are quoted verbatim from the
// paper (marked `paper-reported`); the FMDV-VH row is measured: time spent
// per column and precision/recall on hold-out data, using the paper's
// 20-column protocol.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  av::bench::Flags flags = av::bench::Flags::Parse(argc, argv);
  flags.cases = 20;
  av::bench::PrintHeader("Table 3: user study (20 test columns)", flags);

  const av::bench::Workbench wb = av::bench::Workbench::Build(flags);
  av::AutoValidate engine(&wb.index, flags.MakeOptions());

  av::EvalConfig cfg;
  cfg.num_threads = 1;  // honest per-column wall-clock
  cfg.ground_truth_mode = true;  // humans were scored against ground truth
  const auto eval = av::EvaluateMethod(
      wb.benchmark, "FMDV-VH",
      av::MakeAutoValidateLearner(&engine, av::Method::kFmdvVH), cfg);

  std::printf("%-12s %14s %14s %12s\n", "Programmer", "avg-time (sec)",
              "avg-precision", "avg-recall");
  std::printf("%-12s %14s %14s %12s   (paper-reported)\n", "#1", "145",
              "0.65", "0.638");
  std::printf("%-12s %14s %14s %12s   (paper-reported)\n", "#2", "123",
              "0.45", "0.431");
  std::printf("%-12s %14s %14s %12s   (paper-reported)\n", "#3", "84", "0.3",
              "0.266");
  std::printf("%-12s %14.4f %14.3f %12.3f   (measured)\n", "FMDV-VH",
              eval.avg_train_ms / 1000.0, eval.precision, eval.recall);
  std::printf(
      "\npaper (Table 3): FMDV-VH 0.08 s, precision 1.0, recall 0.978 — the\n"
      "algorithm is orders of magnitude faster than the ~2-minute human\n"
      "effort and more accurate (2 of 5 recruited programmers failed the\n"
      "task outright).\n");
  return 0;
}
