// av_cli: command-line front end for the whole system, operating on CSV
// files — the shape a downstream team would actually deploy in a pipeline.
// Rules live in a ValidationService rule-set file, so one `train` per
// column accumulates into a single rules file that recurring `validate`
// runs load.
//
//   av_cli index <csv_dir> <index_file> [--memory-budget=N[K|M|G]]
//                                                 build the offline index;
//                                                 with a budget the lake is
//                                                 streamed file-by-file and
//                                                 chunk indexes spill to disk
//                                                 (bounded-memory, same bytes)
//   av_cli train <index_file> <csv> <column> <rules_file> [method]
//   av_cli validate <rules_file> <csv> <column>   exit 2 when flagged
//   av_cli validate-table <rules_file> <csv>      whole table in one run;
//                                                 exit 2 when any column flags
//   av_cli tag <index_file> <csv> <column>        print the domain tag
//   av_cli demo <dir>                             write a demo lake as CSVs
//
// Remote mode (against a running avserved, AVNET001 over loopback):
//   av_cli remote-validate <host:port> <csv> <column>   exit 2 when flagged
//   av_cli remote-validate-table <host:port> <csv>      exit 2 on any flag
//   av_cli remote-stats <host:port>               print the server stats text
//   av_cli remote-shutdown <host:port>            graceful drain
//
// Example session:
//   ./build/examples/av_cli demo /tmp/lake
//   ./build/examples/av_cli index /tmp/lake /tmp/lake.idx
//   ./build/examples/av_cli train /tmp/lake.idx /tmp/lake/table_0.csv 0 /tmp/rules.avrs
//   ./build/examples/av_cli validate /tmp/rules.avrs /tmp/lake/table_0.csv 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "core/validation_service.h"
#include "corpus/column_reader.h"
#include "corpus/csv.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"
#include "server/client.h"

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  av_cli demo <dir>\n"
               "  av_cli index <csv_dir> <index_file> [--memory-budget=N[K|M|G]]\n"
               "  av_cli train <index_file> <csv> <column> <rules_file> "
               "[FMDV|FMDV-V|FMDV-H|FMDV-VH]\n"
               "  av_cli validate <rules_file> <csv> <column>\n"
               "  av_cli validate-table <rules_file> <csv>\n"
               "  av_cli tag <index_file> <csv> <column>\n"
               "  av_cli remote-validate <host:port> <csv> <column>\n"
               "  av_cli remote-validate-table <host:port> <csv>\n"
               "  av_cli remote-stats <host:port>\n"
               "  av_cli remote-shutdown <host:port>\n");
  return 1;
}

/// Loads a whole CSV file as a table.
av::Result<av::Table> LoadTable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return av::Status::IOError("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return av::TableFromCsv(path, ss.str());
}

/// Loads one column (by name or 0-based position) from a CSV file.
av::Result<std::vector<std::string>> LoadColumn(const std::string& path,
                                                const std::string& column) {
  auto table = LoadTable(path);
  if (!table.ok()) return table.status();
  for (size_t i = 0; i < table->columns.size(); ++i) {
    if (table->columns[i].name == column ||
        std::to_string(i) == column) {
      return table->columns[i].values;
    }
  }
  return av::Status::NotFound("no column '" + column + "' in " + path);
}

av::Method ParseMethod(const char* name) {
  if (std::strcmp(name, "FMDV") == 0) return av::Method::kFmdv;
  if (std::strcmp(name, "FMDV-V") == 0) return av::Method::kFmdvV;
  if (std::strcmp(name, "FMDV-H") == 0) return av::Method::kFmdvH;
  return av::Method::kFmdvVH;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Connects an AVNET001 client to a "host:port" endpoint string.
av::Status ConnectRemote(const std::string& endpoint, av::net::Client* client) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return av::Status::InvalidArgument("endpoint must be host:port: " +
                                       endpoint);
  }
  char* end = nullptr;
  const unsigned long port =
      std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    return av::Status::InvalidArgument("bad port in endpoint: " + endpoint);
  }
  return client->Connect(endpoint.substr(0, colon),
                         static_cast<uint16_t>(port));
}

void PrintReport(const av::ValidationReport& report) {
  std::printf("values=%llu nonconforming=%llu theta=%.4f p=%.4g -> %s\n",
              static_cast<unsigned long long>(report.total),
              static_cast<unsigned long long>(report.nonconforming),
              report.theta_test, report.p_value,
              report.flagged ? "FLAGGED" : "ok");
  for (const auto& v : report.sample_violations) {
    std::printf("  violation: \"%s\"\n", v.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "demo" && argc == 3) {
    const av::Corpus lake =
        av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/1500));
    const av::Status st = av::SaveCorpusToDir(lake, argv[2]);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %zu tables (%zu columns) to %s\n", lake.num_tables(),
                lake.num_columns(), argv[2]);
    return 0;
  }

  if (cmd == "index" && (argc == 4 || argc == 5)) {
    av::IndexerConfig cfg;
    // A CLI run that asked for a memory budget must not silently degrade
    // into an unbounded in-memory build: fail loudly instead.
    cfg.build.strict_spill = true;
    if (argc == 5) {
      const char* flag = "--memory-budget=";
      if (std::strncmp(argv[4], flag, std::strlen(flag)) != 0 ||
          !av::ParseByteSize(argv[4] + std::strlen(flag),
                             &cfg.build.memory_budget_bytes)) {
        return Usage();
      }
    }
    av::IndexerReport report;
    av::PatternIndex index;
    if (cfg.build.memory_budget_bytes > 0) {
      // Out-of-core: stream the CSVs chunk-by-chunk and spill chunk indexes,
      // so the lake never has to fit in memory. Saved bytes are identical
      // to the in-memory build.
      auto reader = av::CsvDirColumnReader::Open(argv[2]);
      if (!reader.ok()) return Fail(reader.status().ToString());
      auto built = av::BuildIndexStreaming(*reader, cfg, &report);
      if (!built.ok()) return Fail(built.status().ToString());
      index = std::move(built).value();
    } else {
      auto corpus = av::LoadCorpusFromDir(argv[2]);
      if (!corpus.ok()) return Fail(corpus.status().ToString());
      auto built = av::TryBuildIndex(*corpus, cfg, &report);
      if (!built.ok()) return Fail(built.status().ToString());
      index = std::move(built).value();
    }
    const av::Status st = index.Save(argv[3]);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("indexed %zu columns in %.2fs -> %zu patterns -> %s\n",
                report.columns_indexed, report.seconds, index.size(),
                argv[3]);
    if (report.used_spill) {
      std::printf("out-of-core: %zu spill runs (%.1f MB), %zu extra merge "
                  "passes, peak chunk-index residency %.1f MB\n",
                  report.spill_runs,
                  static_cast<double>(report.spill_bytes) / 1e6,
                  report.merge_passes,
                  static_cast<double>(report.peak_chunk_index_bytes) / 1e6);
    }
    return 0;
  }

  if (cmd == "train" && (argc == 6 || argc == 7)) {
    auto index = av::PatternIndex::Load(argv[2]);
    if (!index.ok()) return Fail(index.status().ToString());
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());

    av::AutoValidateOptions opts;
    opts.min_coverage = 5;  // CSV-dir lakes are small; scale accordingly
    av::ValidationService service(&index.value(), opts);
    // Accumulate into an existing rule set, so one rules file can monitor
    // many columns across repeated train invocations.
    if (FileExists(argv[5])) {
      const av::Status st = service.Load(argv[5]);
      if (!st.ok()) return Fail(st.ToString());
    }
    const av::Method method =
        argc == 7 ? ParseMethod(argv[6]) : av::Method::kFmdvVH;
    auto rule = service.Train(argv[4], *values, method);
    if (!rule.ok()) return Fail(rule.status().ToString());
    const av::Status st = service.Save(argv[5]);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("learned %s\nrule set (%zu rules, v%llu) written to %s\n",
                rule->Describe().c_str(), service.size(),
                static_cast<unsigned long long>(service.version()), argv[5]);
    return 0;
  }

  if (cmd == "validate" && argc == 5) {
    av::ValidationService service(nullptr, av::AutoValidateOptions{});
    const av::Status st = service.Load(argv[2]);
    if (!st.ok()) return Fail(st.ToString());
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());

    auto report = service.Validate(argv[4], *values);
    if (!report.ok()) {
      // A single-rule file validates any column name for convenience.
      const auto snapshot = service.Snapshot();
      if (snapshot->rules.size() != 1) return Fail(report.status().ToString());
      report = av::ValidateColumn(*snapshot->rules.begin()->second, *values,
                                  service.options().max_sample_violations);
    }
    std::printf("values=%llu nonconforming=%llu theta=%.4f p=%.4g -> %s\n",
                static_cast<unsigned long long>(report->total),
                static_cast<unsigned long long>(report->nonconforming),
                report->theta_test, report->p_value,
                report->flagged ? "FLAGGED" : "ok");
    for (const auto& v : report->sample_violations) {
      std::printf("  violation: \"%s\"\n", v.c_str());
    }
    return report->flagged ? 2 : 0;
  }

  if (cmd == "validate-table" && argc == 4) {
    av::ValidationService service(nullptr, av::AutoValidateOptions{});
    const av::Status st = service.Load(argv[2]);
    if (!st.ok()) return Fail(st.ToString());
    auto table = LoadTable(argv[3]);
    if (!table.ok()) return Fail(table.status().ToString());

    // One tokenization per column, every rule of the table, one rule-store
    // generation for the whole run.
    std::vector<av::NamedColumn> columns;
    columns.reserve(table->columns.size());
    for (const auto& col : table->columns) {
      columns.push_back({col.name, col.values});
    }
    const av::TableReport report = service.ValidateAll(columns);
    for (const auto& col : report.columns) {
      if (!col.status.ok()) {
        std::printf("%-24s (no rule — unmonitored)\n", col.name.c_str());
        continue;
      }
      std::printf("%-24s values=%llu nonconforming=%llu theta=%.4f p=%.4g "
                  "-> %s\n",
                  col.name.c_str(),
                  static_cast<unsigned long long>(col.report.total),
                  static_cast<unsigned long long>(col.report.nonconforming),
                  col.report.theta_test, col.report.p_value,
                  col.report.flagged ? "FLAGGED" : "ok");
      for (const auto& v : col.report.sample_violations) {
        std::printf("  violation: \"%s\"\n", v.c_str());
      }
    }
    std::printf("table: %zu/%zu monitored columns flagged, %llu rows "
                "scanned, rule store v%llu\n",
                report.columns_flagged, report.columns_validated,
                static_cast<unsigned long long>(report.rows_scanned),
                static_cast<unsigned long long>(report.store_version));
    if (report.columns_validated == 0) {
      // Nothing was actually validated (rules/table name mismatch or wrong
      // rules file): fail loudly rather than reporting a healthy table,
      // matching single-column `validate`'s NotFound behavior.
      return Fail("no stored rule matches any column of " +
                  std::string(argv[3]));
    }
    return report.any_flagged() ? 2 : 0;
  }

  if (cmd == "remote-validate" && argc == 5) {
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    auto remote = client.Validate(argv[4], *values);
    if (!remote.ok()) return Fail(remote.status().ToString());
    PrintReport(remote->report);
    std::printf("rule store v%llu @ %s\n",
                static_cast<unsigned long long>(remote->store_version),
                argv[2]);
    return remote->report.flagged ? 2 : 0;
  }

  if (cmd == "remote-validate-table" && argc == 4) {
    auto table = LoadTable(argv[3]);
    if (!table.ok()) return Fail(table.status().ToString());
    std::vector<std::pair<std::string, std::vector<std::string>>> columns;
    columns.reserve(table->columns.size());
    for (auto& col : table->columns) {
      columns.emplace_back(col.name, std::move(col.values));
    }
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    auto remote = client.ValidateTable(columns);
    if (!remote.ok()) return Fail(remote.status().ToString());
    size_t validated = 0, flagged = 0;
    for (const auto& col : remote->columns) {
      if (!col.has_rule) {
        std::printf("%-24s (no rule — unmonitored)\n", col.name.c_str());
        continue;
      }
      ++validated;
      if (col.report.flagged) ++flagged;
      std::printf("%-24s ", col.name.c_str());
      PrintReport(col.report);
    }
    std::printf("table: %zu/%zu monitored columns flagged, rule store "
                "v%llu @ %s\n",
                flagged, validated,
                static_cast<unsigned long long>(remote->store_version),
                argv[2]);
    if (validated == 0) {
      return Fail("no stored rule matches any column of " +
                  std::string(argv[3]));
    }
    return flagged > 0 ? 2 : 0;
  }

  if (cmd == "remote-stats" && argc == 3) {
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status().ToString());
    std::fputs(stats->c_str(), stdout);
    return 0;
  }

  if (cmd == "remote-shutdown" && argc == 3) {
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    const av::Status down = client.Shutdown();
    if (!down.ok()) return Fail(down.ToString());
    std::printf("server draining\n");
    return 0;
  }

  if (cmd == "tag" && argc == 5) {
    auto index = av::PatternIndex::Load(argv[2]);
    if (!index.ok()) return Fail(index.status().ToString());
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());
    av::AutoValidateOptions opts;
    opts.min_coverage = 5;
    opts.autotag_min_coverage = 3;
    const av::AutoValidate engine(&index.value(), opts);
    auto tag = engine.AutoTag(*values);
    if (!tag.ok()) return Fail(tag.status().ToString());
    std::printf("domain tag: %s\n", tag->ToString().c_str());
    return 0;
  }

  return Usage();
}
