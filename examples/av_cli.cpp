// av_cli: command-line front end for the whole system, operating on lake
// files in any registered format (plain CSV, gzip CSV, JSONL, AVCOL1 —
// corpus/format.h) — the shape a downstream team would actually deploy in
// a pipeline. Rules live in a ValidationService rule-set file, so one
// `train` per column accumulates into a single rules file that recurring
// `validate` runs load.
//
//   av_cli index <lake_dir> <index_file> [--memory-budget=N[K|M|G]]
//                [--format=auto|csv|csv.gz|jsonl|avcol]
//                                                 build the offline index;
//                                                 files stream through the
//                                                 format registry (mixed
//                                                 formats under auto); with
//                                                 a budget chunk indexes
//                                                 spill to disk (bounded
//                                                 memory, same bytes)
//   av_cli convert <src_dir> <dst_dir> --format=csv|csv.gz|jsonl|avcol
//                [--from=auto|csv|csv.gz|jsonl|avcol]
//                                                 re-encode a lake; the
//                                                 converted lake indexes to
//                                                 byte-identical AVIDX003
//   av_cli train <index_file> <table_file> <column> <rules_file> [method]
//   av_cli validate <rules_file> <table_file> <column>  exit 2 when flagged
//   av_cli validate-table <rules_file> <table_file>     whole table; exit 2
//                                                 when any column flags
//   av_cli tag <index_file> <table_file> <column>  print the domain tag
//   av_cli demo <dir> [--format=F]                 write a demo lake
//
// <table_file> arguments are format-auto-detected (magic bytes +
// extension), so a .jsonl or .avcol table trains and validates exactly
// like its .csv twin.
//
// Remote mode (against a running avserved, AVNET001 over loopback):
//   av_cli remote-validate <host:port> <csv> <column>   exit 2 when flagged
//   av_cli remote-validate-table <host:port> <csv>      exit 2 on any flag
//   av_cli remote-stats <host:port>               print the server stats text
//   av_cli remote-shutdown <host:port>            graceful drain
//
// Example session:
//   ./build/examples/av_cli demo /tmp/lake
//   ./build/examples/av_cli index /tmp/lake /tmp/lake.idx
//   ./build/examples/av_cli train /tmp/lake.idx /tmp/lake/table_0.csv 0 /tmp/rules.avrs
//   ./build/examples/av_cli validate /tmp/rules.avrs /tmp/lake/table_0.csv 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <filesystem>

#include "common/strings.h"
#include "core/validation_service.h"
#include "corpus/column_reader.h"
#include "corpus/csv.h"
#include "corpus/format.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"
#include "server/client.h"

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  av_cli demo <dir> [--format=csv|csv.gz|jsonl|avcol]\n"
               "  av_cli index <lake_dir> <index_file> "
               "[--memory-budget=N[K|M|G]]\n"
               "                [--format=auto|csv|csv.gz|jsonl|avcol]\n"
               "  av_cli convert <src_dir> <dst_dir> "
               "--format=csv|csv.gz|jsonl|avcol [--from=FMT]\n"
               "  av_cli train <index_file> <table_file> <column> <rules_file> "
               "[FMDV|FMDV-V|FMDV-H|FMDV-VH]\n"
               "  av_cli validate <rules_file> <table_file> <column>\n"
               "  av_cli validate-table <rules_file> <table_file>\n"
               "  av_cli tag <index_file> <table_file> <column>\n"
               "  av_cli remote-validate <host:port> <table_file> <column>\n"
               "  av_cli remote-validate-table <host:port> <table_file>\n"
               "  av_cli remote-stats <host:port>\n"
               "  av_cli remote-shutdown <host:port>\n");
  return 1;
}

/// Parses a --format=/--from= value or fails usage-style.
bool ParseFormatFlag(const char* value, av::LakeFormat* out) {
  if (av::ParseLakeFormat(value, out)) return true;
  std::fprintf(stderr, "error: unknown format '%s'\n", value);
  return false;
}

/// Loads a whole table file, auto-detecting its format (magic bytes +
/// extension); unknown extensions fall back to CSV, the legacy behavior.
av::Result<av::Table> LoadTable(const std::string& path) {
  auto detected = av::DetectLakeFormat(path);
  av::LakeFormat format = av::LakeFormat::kCsv;
  if (detected.ok()) {
    format = *detected;
  } else if (detected.status().code() != av::StatusCode::kNotSupported) {
    return detected.status();  // e.g. the file does not exist
  }
  return av::LoadLakeTable({path, av::LakeTableName(path), format});
}

/// Loads one column (by name or 0-based position) from a table file.
av::Result<std::vector<std::string>> LoadColumn(const std::string& path,
                                                const std::string& column) {
  auto table = LoadTable(path);
  if (!table.ok()) return table.status();
  for (size_t i = 0; i < table->columns.size(); ++i) {
    if (table->columns[i].name == column ||
        std::to_string(i) == column) {
      return table->columns[i].values;
    }
  }
  return av::Status::NotFound("no column '" + column + "' in " + path);
}

av::Method ParseMethod(const char* name) {
  if (std::strcmp(name, "FMDV") == 0) return av::Method::kFmdv;
  if (std::strcmp(name, "FMDV-V") == 0) return av::Method::kFmdvV;
  if (std::strcmp(name, "FMDV-H") == 0) return av::Method::kFmdvH;
  return av::Method::kFmdvVH;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Connects an AVNET001 client to a "host:port" endpoint string.
av::Status ConnectRemote(const std::string& endpoint, av::net::Client* client) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return av::Status::InvalidArgument("endpoint must be host:port: " +
                                       endpoint);
  }
  char* end = nullptr;
  const unsigned long port =
      std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    return av::Status::InvalidArgument("bad port in endpoint: " + endpoint);
  }
  return client->Connect(endpoint.substr(0, colon),
                         static_cast<uint16_t>(port));
}

void PrintReport(const av::ValidationReport& report) {
  std::printf("values=%llu nonconforming=%llu theta=%.4f p=%.4g -> %s\n",
              static_cast<unsigned long long>(report.total),
              static_cast<unsigned long long>(report.nonconforming),
              report.theta_test, report.p_value,
              report.flagged ? "FLAGGED" : "ok");
  for (const auto& v : report.sample_violations) {
    std::printf("  violation: \"%s\"\n", v.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "demo" && (argc == 3 || argc == 4)) {
    av::LakeFormat format = av::LakeFormat::kCsv;
    if (argc == 4) {
      const char* flag = "--format=";
      if (std::strncmp(argv[3], flag, std::strlen(flag)) != 0 ||
          !ParseFormatFlag(argv[3] + std::strlen(flag), &format) ||
          format == av::LakeFormat::kAuto) {
        return Usage();
      }
    }
    const av::Corpus lake =
        av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/1500));
    const av::Status st = av::SaveLakeToDir(lake, argv[2], format);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %zu tables (%zu columns) to %s as %s\n",
                lake.num_tables(), lake.num_columns(), argv[2],
                av::LakeFormatName(format));
    return 0;
  }

  if (cmd == "index" && argc >= 4) {
    av::IndexerConfig cfg;
    // A CLI run that asked for a memory budget must not silently degrade
    // into an unbounded in-memory build: fail loudly instead.
    cfg.build.strict_spill = true;
    for (int i = 4; i < argc; ++i) {
      const char* budget_flag = "--memory-budget=";
      const char* format_flag = "--format=";
      if (std::strncmp(argv[i], budget_flag, std::strlen(budget_flag)) == 0) {
        if (!av::ParseByteSize(argv[i] + std::strlen(budget_flag),
                               &cfg.build.memory_budget_bytes)) {
          return Usage();
        }
      } else if (std::strncmp(argv[i], format_flag,
                              std::strlen(format_flag)) == 0) {
        if (!ParseFormatFlag(argv[i] + std::strlen(format_flag),
                             &cfg.lake_format)) {
          return Usage();
        }
      } else {
        return Usage();
      }
    }
    // One path for both modes: stream the lake through the format registry
    // file-by-file. A zero budget keeps chunk indexes in memory; a budget
    // spills them — the saved bytes are identical either way, and identical
    // whatever format encodes the lake.
    av::IndexerReport report;
    auto built = av::BuildIndexFromDir(argv[2], cfg, &report);
    if (!built.ok()) return Fail(built.status().ToString());
    av::PatternIndex index = std::move(built).value();
    const av::Status st = index.Save(argv[3]);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("indexed %zu columns in %.2fs -> %zu patterns -> %s\n",
                report.columns_indexed, report.seconds, index.size(),
                argv[3]);
    if (report.used_spill) {
      std::printf("out-of-core: %zu spill runs (%.1f MB), %zu extra merge "
                  "passes, peak chunk-index residency %.1f MB\n",
                  report.spill_runs,
                  static_cast<double>(report.spill_bytes) / 1e6,
                  report.merge_passes,
                  static_cast<double>(report.peak_chunk_index_bytes) / 1e6);
    }
    return 0;
  }

  if (cmd == "convert" && argc >= 5) {
    av::LakeFormat to = av::LakeFormat::kAuto;
    av::LakeFormat from = av::LakeFormat::kAuto;
    for (int i = 4; i < argc; ++i) {
      const char* to_flag = "--format=";
      const char* from_flag = "--from=";
      if (std::strncmp(argv[i], to_flag, std::strlen(to_flag)) == 0) {
        if (!ParseFormatFlag(argv[i] + std::strlen(to_flag), &to)) {
          return Usage();
        }
      } else if (std::strncmp(argv[i], from_flag, std::strlen(from_flag)) ==
                 0) {
        if (!ParseFormatFlag(argv[i] + std::strlen(from_flag), &from)) {
          return Usage();
        }
      } else {
        return Usage();
      }
    }
    const av::LakeFormatHandler* out_handler = av::FindLakeFormatHandler(to);
    if (out_handler == nullptr) {
      return Fail("convert needs a concrete --format= (not auto)");
    }
    if (!out_handler->available) {
      return Fail(std::string(out_handler->name) +
                  " output is not enabled in this build (zlib missing?)");
    }
    auto files = av::ListLakeFiles(argv[2], from);
    if (!files.ok()) return Fail(files.status().ToString());
    std::error_code ec;
    std::filesystem::create_directories(argv[3], ec);
    if (ec) return Fail("cannot create directory " + std::string(argv[3]));
    // File-by-file: a lake much larger than memory converts in bounded
    // space (one table resident at a time).
    for (const av::LakeFileInfo& info : *files) {
      auto table = av::LoadLakeTable(info);
      if (!table.ok()) return Fail(table.status().ToString());
      const std::string dst = std::string(argv[3]) + "/" + info.table_name +
                              out_handler->extension;
      const av::Status st = out_handler->save(*table, dst);
      if (!st.ok()) return Fail(st.ToString());
    }
    std::printf("converted %zu tables %s -> %s (%s)\n", files->size(),
                argv[2], argv[3], out_handler->name);
    return 0;
  }

  if (cmd == "train" && (argc == 6 || argc == 7)) {
    auto index = av::PatternIndex::Load(argv[2]);
    if (!index.ok()) return Fail(index.status().ToString());
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());

    av::AutoValidateOptions opts;
    opts.min_coverage = 5;  // CSV-dir lakes are small; scale accordingly
    av::ValidationService service(&index.value(), opts);
    // Accumulate into an existing rule set, so one rules file can monitor
    // many columns across repeated train invocations.
    if (FileExists(argv[5])) {
      const av::Status st = service.Load(argv[5]);
      if (!st.ok()) return Fail(st.ToString());
    }
    const av::Method method =
        argc == 7 ? ParseMethod(argv[6]) : av::Method::kFmdvVH;
    auto rule = service.Train(argv[4], *values, method);
    if (!rule.ok()) return Fail(rule.status().ToString());
    const av::Status st = service.Save(argv[5]);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("learned %s\nrule set (%zu rules, v%llu) written to %s\n",
                rule->Describe().c_str(), service.size(),
                static_cast<unsigned long long>(service.version()), argv[5]);
    return 0;
  }

  if (cmd == "validate" && argc == 5) {
    av::ValidationService service(nullptr, av::AutoValidateOptions{});
    const av::Status st = service.Load(argv[2]);
    if (!st.ok()) return Fail(st.ToString());
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());

    auto report = service.Validate(argv[4], *values);
    if (!report.ok()) {
      // A single-rule file validates any column name for convenience.
      const auto snapshot = service.Snapshot();
      if (snapshot->rules.size() != 1) return Fail(report.status().ToString());
      report = av::ValidateColumn(*snapshot->rules.begin()->second, *values,
                                  service.options().max_sample_violations);
    }
    std::printf("values=%llu nonconforming=%llu theta=%.4f p=%.4g -> %s\n",
                static_cast<unsigned long long>(report->total),
                static_cast<unsigned long long>(report->nonconforming),
                report->theta_test, report->p_value,
                report->flagged ? "FLAGGED" : "ok");
    for (const auto& v : report->sample_violations) {
      std::printf("  violation: \"%s\"\n", v.c_str());
    }
    return report->flagged ? 2 : 0;
  }

  if (cmd == "validate-table" && argc == 4) {
    av::ValidationService service(nullptr, av::AutoValidateOptions{});
    const av::Status st = service.Load(argv[2]);
    if (!st.ok()) return Fail(st.ToString());
    auto table = LoadTable(argv[3]);
    if (!table.ok()) return Fail(table.status().ToString());

    // One tokenization per column, every rule of the table, one rule-store
    // generation for the whole run.
    std::vector<av::NamedColumn> columns;
    columns.reserve(table->columns.size());
    for (const auto& col : table->columns) {
      columns.push_back({col.name, col.values});
    }
    const av::TableReport report = service.ValidateAll(columns);
    for (const auto& col : report.columns) {
      if (!col.status.ok()) {
        std::printf("%-24s (no rule — unmonitored)\n", col.name.c_str());
        continue;
      }
      std::printf("%-24s values=%llu nonconforming=%llu theta=%.4f p=%.4g "
                  "-> %s\n",
                  col.name.c_str(),
                  static_cast<unsigned long long>(col.report.total),
                  static_cast<unsigned long long>(col.report.nonconforming),
                  col.report.theta_test, col.report.p_value,
                  col.report.flagged ? "FLAGGED" : "ok");
      for (const auto& v : col.report.sample_violations) {
        std::printf("  violation: \"%s\"\n", v.c_str());
      }
    }
    std::printf("table: %zu/%zu monitored columns flagged, %llu rows "
                "scanned, rule store v%llu\n",
                report.columns_flagged, report.columns_validated,
                static_cast<unsigned long long>(report.rows_scanned),
                static_cast<unsigned long long>(report.store_version));
    if (report.columns_validated == 0) {
      // Nothing was actually validated (rules/table name mismatch or wrong
      // rules file): fail loudly rather than reporting a healthy table,
      // matching single-column `validate`'s NotFound behavior.
      return Fail("no stored rule matches any column of " +
                  std::string(argv[3]));
    }
    return report.any_flagged() ? 2 : 0;
  }

  if (cmd == "remote-validate" && argc == 5) {
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    auto remote = client.Validate(argv[4], *values);
    if (!remote.ok()) return Fail(remote.status().ToString());
    PrintReport(remote->report);
    std::printf("rule store v%llu @ %s\n",
                static_cast<unsigned long long>(remote->store_version),
                argv[2]);
    return remote->report.flagged ? 2 : 0;
  }

  if (cmd == "remote-validate-table" && argc == 4) {
    auto table = LoadTable(argv[3]);
    if (!table.ok()) return Fail(table.status().ToString());
    std::vector<std::pair<std::string, std::vector<std::string>>> columns;
    columns.reserve(table->columns.size());
    for (auto& col : table->columns) {
      columns.emplace_back(col.name, std::move(col.values));
    }
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    auto remote = client.ValidateTable(columns);
    if (!remote.ok()) return Fail(remote.status().ToString());
    size_t validated = 0, flagged = 0;
    for (const auto& col : remote->columns) {
      if (!col.has_rule) {
        std::printf("%-24s (no rule — unmonitored)\n", col.name.c_str());
        continue;
      }
      ++validated;
      if (col.report.flagged) ++flagged;
      std::printf("%-24s ", col.name.c_str());
      PrintReport(col.report);
    }
    std::printf("table: %zu/%zu monitored columns flagged, rule store "
                "v%llu @ %s\n",
                flagged, validated,
                static_cast<unsigned long long>(remote->store_version),
                argv[2]);
    if (validated == 0) {
      return Fail("no stored rule matches any column of " +
                  std::string(argv[3]));
    }
    return flagged > 0 ? 2 : 0;
  }

  if (cmd == "remote-stats" && argc == 3) {
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status().ToString());
    std::fputs(stats->c_str(), stdout);
    return 0;
  }

  if (cmd == "remote-shutdown" && argc == 3) {
    av::net::Client client;
    const av::Status st = ConnectRemote(argv[2], &client);
    if (!st.ok()) return Fail(st.ToString());
    const av::Status down = client.Shutdown();
    if (!down.ok()) return Fail(down.ToString());
    std::printf("server draining\n");
    return 0;
  }

  if (cmd == "tag" && argc == 5) {
    auto index = av::PatternIndex::Load(argv[2]);
    if (!index.ok()) return Fail(index.status().ToString());
    auto values = LoadColumn(argv[3], argv[4]);
    if (!values.ok()) return Fail(values.status().ToString());
    av::AutoValidateOptions opts;
    opts.min_coverage = 5;
    opts.autotag_min_coverage = 3;
    const av::AutoValidate engine(&index.value(), opts);
    auto tag = engine.AutoTag(*values);
    if (!tag.ok()) return Fail(tag.status().ToString());
    std::printf("domain tag: %s\n", tag->ToString().c_str());
    return 0;
  }

  return Usage();
}
