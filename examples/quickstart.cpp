// Quickstart: the complete Auto-Validate flow in ~60 lines, on the
// ValidationService serving API.
//
//   1. Build (or load) a corpus T — here a synthetic enterprise lake.
//   2. Run the offline indexing job once (Section 2.4).
//   3. Train a named rule for a query column with FMDV-VH.
//   4. Validate future batches by column name: clean data passes, drifted
//      data alarms. Values are passed as zero-copy ColumnViews (a
//      std::vector<std::string> converts implicitly).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/validation_service.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"

int main() {
  // 1. The background corpus T (in production: your data lake's columns).
  const av::Corpus lake =
      av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/2000));
  std::printf("corpus: %zu columns in %zu tables\n", lake.num_columns(),
              lake.num_tables());

  // 2. Offline: one scan of T builds the pattern index (Figure 7).
  av::IndexerConfig indexer_cfg;
  av::IndexerReport report;
  const av::PatternIndex index = av::BuildIndex(lake, indexer_cfg, &report);
  std::printf("index: %zu patterns from %zu columns in %.2fs\n\n",
              index.size(), report.columns_indexed, report.seconds);

  // 3. Online: train a rule from the data a pipeline produced today.
  // Training data covers ONLY March 2019 — the Figure 2 generalization test.
  std::vector<std::string> todays_data;
  for (int d = 1; d <= 28; ++d) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "Mar %02d 2019", d);
    todays_data.push_back(buf);
  }
  todays_data.push_back("-");  // one ad-hoc null (Figure 9)

  av::AutoValidateOptions opts;
  opts.fpr_target = 0.1;   // r: Equation (6)
  opts.min_coverage = 10;  // m: Equation (7), scaled to the small lake
  av::ValidationService service(&index, opts);

  const auto rule =
      service.Train("order_date", todays_data, av::Method::kFmdvVH);
  if (!rule.ok()) {
    std::printf("training failed: %s\n", rule.status().ToString().c_str());
    return 1;
  }
  std::printf("learned rule: %s (store v%llu)\n\n", rule->Describe().c_str(),
              static_cast<unsigned long long>(service.version()));

  // 4. Validate future batches by column name.
  const std::vector<std::string> next_month = {"Apr 01 2019", "Apr 02 2019",
                                               "Apr 03 2019", "Apr 04 2019"};
  const auto ok_report = service.Validate("order_date", next_month);
  std::printf("April batch:   flagged=%s (new months generalize, unlike a\n"
              "               dictionary or profiling rule)\n",
              ok_report->flagged ? "YES" : "no");

  const std::vector<std::string> drifted = {"2019-04-01", "2019-04-02",
                                            "2019-04-03", "2019-04-04"};
  const auto bad_report = service.Validate("order_date", drifted);
  std::printf("drifted batch: flagged=%s (format changed to ISO dates)\n",
              bad_report->flagged ? "YES" : "no");
  if (!bad_report->sample_violations.empty()) {
    std::printf("               example violation: \"%s\"\n",
                bad_report->sample_violations[0].c_str());
  }
  return bad_report->flagged && !ok_report->flagged ? 0 : 1;
}
