// pipeline_monitor: the paper's motivating scenario — a recurring (daily)
// production pipeline whose upstream feed drifts silently over time.
//
// A table with several string columns recurs for 14 "days". On day 8 the
// upstream provider introduces data-drift in the locale column ("en-us"
// becomes "en_us" — a silent formatting change of the kind reported in the
// paper's introduction) and on day 11 schema-drift swaps two columns. The
// monitor trains rules on day 0 and raises alerts as the issues arrive.
//
// Build & run:  ./build/examples/pipeline_monitor
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/auto_validate.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"

namespace {

struct Feed {
  std::vector<std::string> locale;
  std::vector<std::string> latency_ms;
  std::vector<std::string> job_id;
};

Feed MakeDailyFeed(av::Rng& rng, int day) {
  Feed feed;
  const bool data_drift = day >= 8;    // "en-us" -> "en_us"
  const bool schema_drift = day >= 11; // columns swapped upstream
  static const char* kLangs[] = {"en", "fr", "de", "ja"};
  static const char* kRegions[] = {"us", "gb", "fr", "jp"};
  for (int row = 0; row < 400; ++row) {
    const char* sep = data_drift ? "_" : "-";
    feed.locale.push_back(std::string(kLangs[rng.Below(4)]) + sep +
                          kRegions[rng.Below(4)]);
    feed.latency_ms.push_back(std::to_string(rng.Range(1, 999)) + "." +
                              rng.DigitString(2));
    feed.job_id.push_back("JOB-" + rng.DigitString(6));
  }
  if (schema_drift) std::swap(feed.locale, feed.job_id);
  return feed;
}

}  // namespace

int main() {
  const av::Corpus lake =
      av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/3000));
  const av::PatternIndex index = av::BuildIndex(lake, av::IndexerConfig{});

  av::AutoValidateOptions opts;
  opts.min_coverage = 10;
  const av::AutoValidate engine(&index, opts);

  // Day 0: train one rule per column of the feed.
  av::Rng rng(2024);
  const Feed day0 = MakeDailyFeed(rng, 0);
  struct MonitoredColumn {
    const char* name;
    av::ValidationRule rule;
  };
  std::vector<MonitoredColumn> monitors;
  for (const auto& [name, values] :
       {std::pair<const char*, const std::vector<std::string>*>{
            "locale", &day0.locale},
        std::pair<const char*, const std::vector<std::string>*>{
            "latency_sec", &day0.latency_ms},
        std::pair<const char*, const std::vector<std::string>*>{
            "job_id", &day0.job_id}}) {
    auto rule = engine.Train(*values, av::Method::kFmdvVH);
    if (!rule.ok()) {
      std::printf("[%s] no rule inferred (%s) — column left unmonitored\n",
                  name, rule.status().ToString().c_str());
      continue;
    }
    std::printf("[%s] monitoring with %s\n", name, rule->Describe().c_str());
    monitors.push_back({name, std::move(rule).value()});
  }

  // Days 1..13: validate each day's arrival.
  std::printf("\n%-5s %-10s %-12s %-8s  alerts\n", "day", "locale",
              "latency_sec", "job_id");
  for (int day = 1; day < 14; ++day) {
    const Feed feed = MakeDailyFeed(rng, day);
    std::printf("%-5d", day);
    std::string alerts;
    for (const auto& m : monitors) {
      const std::vector<std::string>* values =
          std::string(m.name) == "locale"       ? &feed.locale
          : std::string(m.name) == "latency_sec" ? &feed.latency_ms
                                                : &feed.job_id;
      const auto report = engine.Validate(m.rule, *values);
      std::printf(" %-11s", report.flagged ? "ALERT" : "ok");
      if (report.flagged && !report.sample_violations.empty()) {
        alerts += std::string(" [") + m.name + ": \"" +
                  report.sample_violations[0] + "\", theta " +
                  av::FormatDouble(report.theta_test * 100, 1) + "%]";
      }
    }
    std::printf(" %s\n", alerts.c_str());
  }
  std::printf(
      "\nExpected: all ok through day 7; 'locale' alerts from day 8\n"
      "(data-drift en-us -> en_us); 'locale' and 'job_id' alert from day 11\n"
      "(schema-drift swap). Pure case drift (en-us -> en-US) is caught only\n"
      "when the lake's locale columns are consistently cased — with mixed\n"
      "conventions present, minimizing FPR_T legitimately generalizes to\n"
      "<letter> (Definition 3).\n");
  return 0;
}
