// pipeline_monitor: the paper's motivating scenario — a recurring (daily)
// production pipeline whose upstream feed drifts silently over time — on
// the ValidationService serving layer.
//
// A table with several string columns recurs for 14 "days". On day 8 the
// upstream provider introduces data-drift in the locale column ("en-us"
// becomes "en_us" — a silent formatting change of the kind reported in the
// paper's introduction) and on day 11 schema-drift swaps two columns. Day 0
// trains one rule per column with TrainAll (thread-pool fan-out, one store
// generation); each later day validates the WHOLE table at once. Daily
// tables arrive as four micro-batches through a streaming TableSession
// (per-column sessions pinned to one rule-store generation), whose
// merged-count TableReport is identical to the one-shot ValidateAll run.
//
// Build & run:  ./build/examples/pipeline_monitor
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/validation_service.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"

namespace {

struct Feed {
  std::vector<std::string> locale;
  std::vector<std::string> latency_ms;
  std::vector<std::string> job_id;
};

Feed MakeDailyFeed(av::Rng& rng, int day) {
  Feed feed;
  const bool data_drift = day >= 8;    // "en-us" -> "en_us"
  const bool schema_drift = day >= 11; // columns swapped upstream
  static const char* kLangs[] = {"en", "fr", "de", "ja"};
  static const char* kRegions[] = {"us", "gb", "fr", "jp"};
  for (int row = 0; row < 400; ++row) {
    const char* sep = data_drift ? "_" : "-";
    feed.locale.push_back(std::string(kLangs[rng.Below(4)]) + sep +
                          kRegions[rng.Below(4)]);
    feed.latency_ms.push_back(std::to_string(rng.Range(1, 999)) + "." +
                              rng.DigitString(2));
    feed.job_id.push_back("JOB-" + rng.DigitString(6));
  }
  if (schema_drift) std::swap(feed.locale, feed.job_id);
  return feed;
}

const std::vector<std::string>& ColumnOf(const Feed& feed,
                                         const std::string& name) {
  if (name == "locale") return feed.locale;
  if (name == "latency_sec") return feed.latency_ms;
  return feed.job_id;
}

}  // namespace

int main() {
  const av::Corpus lake =
      av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/3000));
  const av::PatternIndex index = av::BuildIndex(lake, av::IndexerConfig{});

  av::AutoValidateOptions opts;
  opts.min_coverage = 10;
  av::ValidationService service(&index, opts);

  // Day 0: train one rule per column of the feed, fanned out over the
  // service's thread pool and installed as a single store generation.
  av::Rng rng(2024);
  const Feed day0 = MakeDailyFeed(rng, 0);
  const std::vector<av::ValidationService::NamedColumn> day0_columns = {
      {"locale", day0.locale},
      {"latency_sec", day0.latency_ms},
      {"job_id", day0.job_id},
  };
  std::vector<std::string> monitored;
  for (const auto& outcome : service.TrainAll(day0_columns)) {
    if (!outcome.status.ok()) {
      std::printf("[%s] no rule inferred (%s) — column left unmonitored\n",
                  outcome.name.c_str(), outcome.status.ToString().c_str());
      continue;
    }
    std::printf("[%s] monitoring with %s\n", outcome.name.c_str(),
                service.Find(outcome.name)->Describe().c_str());
    monitored.push_back(outcome.name);
  }
  std::printf("rule store: %zu rules at version %llu\n", service.size(),
              static_cast<unsigned long long>(service.version()));

  // Days 1..13: each day's table streams in as 4 micro-batches through a
  // TableSession pinned to one rule-store generation; Finish() runs every
  // column's homogeneity test on its merged counts (identical counts and
  // verdicts to a one-shot service.ValidateAll on the whole day).
  std::printf("\n%-5s %-10s %-12s %-8s  alerts\n", "day", "locale",
              "latency_sec", "job_id");
  for (int day = 1; day < 14; ++day) {
    const Feed feed = MakeDailyFeed(rng, day);
    av::TableSession session = service.OpenTableSession();
    const size_t rows = feed.locale.size();
    const size_t quarter = rows / 4;
    for (size_t b = 0; b < 4; ++b) {
      const size_t begin = b * quarter;
      const size_t end = b == 3 ? rows : begin + quarter;
      std::vector<av::NamedColumn> batch;
      for (const std::string& name : monitored) {
        const std::span<const std::string> all(ColumnOf(feed, name));
        batch.push_back({name, all.subspan(begin, end - begin)});
      }
      session.Feed(batch);
    }
    const av::TableReport table = session.Finish();
    std::printf("%-5d", day);
    std::string alerts;
    for (const std::string& name : monitored) {
      const av::TableReport::ColumnOutcome* col = table.Find(name);
      if (col == nullptr || !col->status.ok()) continue;
      const av::ValidationReport& report = col->report;
      std::printf(" %-11s", report.flagged ? "ALERT" : "ok");
      if (report.flagged && !report.sample_violations.empty()) {
        alerts += std::string(" [") + name + ": \"" +
                  report.sample_violations[0] + "\", theta " +
                  av::FormatDouble(report.theta_test * 100, 1) + "%]";
      }
    }
    std::printf(" %s (%zu/%zu columns flagged, store v%llu)\n",
                alerts.c_str(), table.columns_flagged,
                table.columns_validated,
                static_cast<unsigned long long>(table.store_version));
  }
  std::printf(
      "\nExpected: all ok through day 7; 'locale' alerts from day 8\n"
      "(data-drift en-us -> en_us); 'locale' and 'job_id' alert from day 11\n"
      "(schema-drift swap). Pure case drift (en-us -> en-US) is caught only\n"
      "when the lake's locale columns are consistently cased — with mixed\n"
      "conventions present, minimizing FPR_T legitimately generalizes to\n"
      "<letter> (Definition 3).\n");
  return 0;
}
