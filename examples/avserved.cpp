// avserved: the network serving daemon. Loads a rule-set file (and
// optionally the offline pattern index, which enables TRAIN and background
// retraining), then serves AVNET001 on a loopback TCP port until a SHUTDOWN
// frame or SIGTERM/SIGINT starts the graceful drain.
//
//   avserved --rules=<rules.avrs> [--index=<lake.idx>] [--port=N]
//            [--bind=ADDR] [--workers=N] [--default-ttl-ms=N]
//            [--scan-interval-ms=N] [--violation-threshold=N]
//            [--max-outbox-bytes=N] [--lake=DIR [--lake-format=F]] [--quiet]
//
// The pattern index (which enables TRAIN and background retraining) comes
// from either --index=<saved .idx file> or --lake=<directory> — the latter
// indexes the lake at startup through the format registry (csv, csv.gz,
// jsonl, avcol are auto-detected; constrain with --lake-format).
//
// With --port=0 (the default) an ephemeral port is chosen and printed as
// the first stdout line, `listening on <addr>:<port>` — scripts (and the CI
// smoke job) parse that line, then talk to the port with
// `av_cli remote-*` or the C++ Client.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/strings.h"
#include "core/rule_lifecycle.h"
#include "core/validation_service.h"
#include "corpus/format.h"
#include "index/indexer.h"
#include "index/pattern_index.h"
#include "server/server.h"

namespace {

av::net::Server* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: an atomic store plus an eventfd write.
  if (g_server != nullptr) g_server->RequestDrain();
}

bool ParseU64Flag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + len, &end, 10);
  if (end == arg + len || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseStrFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: avserved --rules=<rules.avrs> [--index=<lake.idx>]\n"
      "                [--lake=DIR [--lake-format=auto|csv|csv.gz|jsonl|"
      "avcol]]\n"
      "                [--port=N] [--bind=ADDR] [--workers=N]\n"
      "                [--default-ttl-ms=N] [--scan-interval-ms=N]\n"
      "                [--violation-threshold=N] [--max-outbox-bytes=N]\n"
      "                [--quiet]\n");
  return 1;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::string index_path;
  std::string lake_dir;
  std::string lake_format_name;
  std::string outbox_cap;
  av::net::ServerConfig cfg;
  av::RuleLifecycleOptions lifecycle_opts;
  uint64_t port = 0, workers = 0, ttl = 0, scan_interval = 0, threshold = 0;
  bool quiet = false;
  bool have_ttl = false, have_scan = false, have_threshold = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseStrFlag(arg, "--rules=", &rules_path)) continue;
    if (ParseStrFlag(arg, "--index=", &index_path)) continue;
    if (ParseStrFlag(arg, "--lake=", &lake_dir)) continue;
    if (ParseStrFlag(arg, "--lake-format=", &lake_format_name)) continue;
    if (ParseStrFlag(arg, "--max-outbox-bytes=", &outbox_cap)) continue;
    if (ParseStrFlag(arg, "--bind=", &cfg.bind_address)) continue;
    if (ParseU64Flag(arg, "--port=", &port)) continue;
    if (ParseU64Flag(arg, "--workers=", &workers)) continue;
    if (ParseU64Flag(arg, "--default-ttl-ms=", &ttl)) {
      have_ttl = true;
      continue;
    }
    if (ParseU64Flag(arg, "--scan-interval-ms=", &scan_interval)) {
      have_scan = true;
      continue;
    }
    if (ParseU64Flag(arg, "--violation-threshold=", &threshold)) {
      have_threshold = true;
      continue;
    }
    if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
      continue;
    }
    return Usage();
  }
  if (rules_path.empty() || port > 65535) return Usage();
  if (!index_path.empty() && !lake_dir.empty()) {
    std::fprintf(stderr,
                 "error: --index and --lake are mutually exclusive\n");
    return 1;
  }
  if (!lake_format_name.empty() && lake_dir.empty()) {
    std::fprintf(stderr, "error: --lake-format requires --lake\n");
    return 1;
  }
  cfg.port = static_cast<uint16_t>(port);
  cfg.num_workers = static_cast<size_t>(workers);
  cfg.rules_path = rules_path;
  if (!outbox_cap.empty() &&
      !av::ParseByteSize(outbox_cap, &cfg.max_outbox_bytes)) {
    std::fprintf(stderr, "error: bad --max-outbox-bytes value: %s\n",
                 outbox_cap.c_str());
    return 1;
  }

  // The index is optional: without it avserved is a validate-only server
  // (TRAIN fails with InvalidArgument and no lifecycle scanner runs).
  av::PatternIndex index;
  bool have_index = false;
  if (!index_path.empty()) {
    auto loaded = av::PatternIndex::Load(index_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    index = std::move(loaded).value();
    have_index = true;
  } else if (!lake_dir.empty()) {
    av::IndexerConfig idx_cfg;
    if (!lake_format_name.empty() &&
        !av::ParseLakeFormat(lake_format_name, &idx_cfg.lake_format)) {
      std::fprintf(stderr, "error: bad --lake-format value: %s\n",
                   lake_format_name.c_str());
      return 1;
    }
    auto built = av::BuildIndexFromDir(lake_dir, idx_cfg);
    if (!built.ok()) {
      std::fprintf(stderr, "error: indexing %s: %s\n", lake_dir.c_str(),
                   built.status().ToString().c_str());
      return 1;
    }
    index = std::move(built).value();
    have_index = true;
  }

  av::AutoValidateOptions opts;
  opts.min_coverage = 5;  // CSV-dir lakes are small (av_cli's convention)
  av::ValidationService service(have_index ? &index : nullptr, opts);
  if (FileExists(rules_path)) {
    const av::Status st = service.Load(rules_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (have_ttl) lifecycle_opts.default_ttl_ms = ttl;
  if (have_scan) lifecycle_opts.scan_interval_ms = scan_interval;
  if (have_threshold) lifecycle_opts.violation_threshold = threshold;
  av::RuleLifecycle lifecycle(&service, lifecycle_opts);

  av::net::Server server(&service, cfg,
                         have_index ? &lifecycle : nullptr);
  const av::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (have_index) lifecycle.StartScanner();

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::printf("listening on %s:%u\n", cfg.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);  // scripts block on this line; don't sit in a buffer
  if (!quiet) {
    std::fprintf(stderr,
                 "avserved: %zu rules (store v%llu), index=%s, pid %d\n",
                 service.size(),
                 static_cast<unsigned long long>(service.version()),
                 !index_path.empty()  ? index_path.c_str()
                 : have_index         ? lake_dir.c_str()
                                      : "(none)",
                 static_cast<int>(getpid()));
  }

  server.Join();
  lifecycle.StopScanner();
  g_server = nullptr;
  if (!quiet) {
    std::fprintf(stderr, "avserved: drained (%llu frames), bye\n",
                 static_cast<unsigned long long>(server.frames_handled()));
  }
  return 0;
}
