// auto_tag: the dual formulation of Section 2.3, shipped as the Auto-Tag
// feature of Microsoft Azure Purview — infer the most *restrictive* pattern
// describing a column's domain, then use it to tag related columns of the
// same type across the lake (data-governance / search scenario).
//
// Build & run:  ./build/examples/auto_tag
#include <cstdio>
#include <map>

#include "core/auto_validate.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"
#include "pattern/matcher.h"

int main() {
  const av::Corpus lake =
      av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/2000));
  const av::PatternIndex index = av::BuildIndex(lake, av::IndexerConfig{});

  av::AutoValidateOptions opts;
  opts.min_coverage = 10;
  opts.autotag_min_coverage = 5;
  const av::AutoValidate engine(&index, opts);

  // A data steward labels ONE column of GUIDs...
  std::vector<std::string> labeled_column;
  {
    av::Rng rng(42);
    for (int i = 0; i < 50; ++i) {
      labeled_column.push_back(rng.HexString(8) + "-" + rng.HexString(4) +
                               "-" + rng.HexString(4) + "-" +
                               rng.HexString(4) + "-" + rng.HexString(12));
    }
  }
  const auto tag = engine.AutoTag(labeled_column);
  if (!tag.ok()) {
    std::printf("auto-tag failed: %s\n", tag.status().ToString().c_str());
    return 1;
  }
  std::printf("inferred domain tag: \"%s\"\n\n", tag->ToString().c_str());

  // ...and every column in the lake matching the tag is auto-tagged.
  size_t tagged = 0;
  std::map<std::string, size_t> tagged_by_domain;
  for (const av::Column* col : lake.AllColumns()) {
    if (col->values.empty()) continue;
    size_t matched = 0;
    for (const auto& v : col->values) {
      if (av::Matches(*tag, v)) ++matched;
    }
    if (matched >= col->values.size() * 9 / 10) {
      ++tagged;
      ++tagged_by_domain[col->domain_name];
    }
  }
  std::printf("tagged %zu of %zu lake columns; by true domain:\n", tagged,
              lake.num_columns());
  for (const auto& [domain, count] : tagged_by_domain) {
    std::printf("  %-24s %zu\n", domain.c_str(), count);
  }
  std::printf(
      "\nExpected: only 'guid' columns carry the tag — the restrictive\n"
      "fixed-length pattern excludes other hex-ish domains, which is why the\n"
      "dual objective (min coverage under an FNR cap) is the right one for\n"
      "tagging while FPR-minimization is right for validation.\n");
  return 0;
}
