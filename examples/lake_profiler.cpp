// lake_profiler: Section 5.3's "pattern analysis" as a standalone tool —
// index a data lake (here: CSV files in a directory, or a generated lake),
// then report the common data domains (head patterns), the index
// distributions of Figure 13, and save the index artifact for reuse.
//
// Usage:
//   ./build/examples/lake_profiler [csv_dir] [index_out]
// With no arguments, profiles a generated enterprise lake and writes
// /tmp/autovalidate.index.
#include <cstdio>

#include "corpus/csv.h"
#include "eval/reports.h"
#include "index/analysis.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"

int main(int argc, char** argv) {
  av::Corpus lake;
  if (argc > 1) {
    auto loaded = av::LoadCorpusFromDir(argv[1]);
    if (!loaded.ok()) {
      std::printf("cannot load %s: %s\n", argv[1],
                  loaded.status().ToString().c_str());
      return 1;
    }
    lake = std::move(loaded).value();
    std::printf("loaded %zu tables (%zu columns) from %s\n",
                lake.num_tables(), lake.num_columns(), argv[1]);
  } else {
    lake = av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/3000));
    std::printf("generated enterprise lake: %zu columns\n",
                lake.num_columns());
  }

  av::IndexerConfig cfg;
  av::IndexerReport report;
  const av::PatternIndex index = av::BuildIndex(lake, cfg, &report);
  std::printf("indexed %zu columns in %.2fs -> %zu patterns (%.1f MB)\n\n",
              report.columns_indexed, report.seconds, index.size(),
              static_cast<double>(index.ApproxBytes()) / 1e6);

  std::printf("== common data domains of this lake (Figure 3 style) ==\n");
  std::printf("%-52s %10s %8s\n", "pattern", "columns", "FPR");
  for (const auto& hp : av::HeadPatterns(index, 20, 0.02)) {
    std::printf("%-52s %10llu %8.4f\n", hp.pattern.c_str(),
                static_cast<unsigned long long>(hp.coverage), hp.fpr);
  }

  std::printf("\n== index distributions (Figure 13) ==\n");
  av::PrintIndexDistributions(av::AnalyzeIndex(index));

  const char* out = argc > 2 ? argv[2] : "/tmp/autovalidate.index";
  const av::Status st = index.Save(out);
  if (!st.ok()) {
    std::printf("failed to save index: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nindex saved to %s (reusable via PatternIndex::Load)\n", out);
  return 0;
}
