// lake_profiler: Section 5.3's "pattern analysis" as a standalone tool —
// index a data lake (files in a directory, any registered format, or a
// generated lake), then report the common data domains (head patterns),
// the index distributions of Figure 13, and save the index artifact for
// reuse.
//
// Usage:
//   ./build/examples/lake_profiler [lake_dir] [index_out]
//       [--memory-budget=N] [--format=auto|csv|csv.gz|jsonl|avcol]
// With no positional arguments, profiles a generated enterprise lake and
// writes /tmp/autovalidate.index. Lake files go through the format
// registry (corpus/format.h): mixed-format directories profile fine under
// the default --format=auto. With --memory-budget=N (bytes; K/M/G
// suffixes accepted) the index is built out-of-core: the lake is streamed
// file-by-file and chunk indexes spill to disk, so lakes larger than
// memory profile fine — the saved index bytes are identical.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"
#include "corpus/format.h"
#include "eval/reports.h"
#include "index/analysis.h"
#include "index/indexer.h"
#include "lakegen/lakegen.h"

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  av::IndexerConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* budget_flag = "--memory-budget=";
    const char* format_flag = "--format=";
    if (std::strncmp(argv[i], budget_flag, std::strlen(budget_flag)) == 0) {
      if (!av::ParseByteSize(argv[i] + std::strlen(budget_flag),
                             &cfg.build.memory_budget_bytes)) {
        std::printf("bad --memory-budget value: %s\n", argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], format_flag, std::strlen(format_flag)) ==
               0) {
      if (!av::ParseLakeFormat(argv[i] + std::strlen(format_flag),
                               &cfg.lake_format)) {
        std::printf("bad --format value: %s\n", argv[i]);
        return 1;
      }
    } else {
      positional.push_back(argv[i]);
    }
  }

  av::Corpus lake;
  av::IndexerReport report;
  av::PatternIndex index;
  if (!positional.empty() && cfg.build.memory_budget_bytes > 0) {
    // True out-of-core: never materialize the lake.
    auto built = av::BuildIndexFromDir(positional[0], cfg, &report);
    if (!built.ok()) {
      std::printf("out-of-core build failed: %s\n",
                  built.status().ToString().c_str());
      return 1;
    }
    index = std::move(built).value();
    std::printf("streamed %zu columns from %s (budget %.0f MB)\n",
                report.columns_total, positional[0].c_str(),
                static_cast<double>(cfg.build.memory_budget_bytes) / 1e6);
  } else {
    if (!positional.empty()) {
      auto loaded = av::LoadLakeFromDir(positional[0], cfg.lake_format);
      if (!loaded.ok()) {
        std::printf("cannot load %s: %s\n", positional[0].c_str(),
                    loaded.status().ToString().c_str());
        return 1;
      }
      lake = std::move(loaded).value();
      std::printf("loaded %zu tables (%zu columns) from %s\n",
                  lake.num_tables(), lake.num_columns(), positional[0].c_str());
    } else {
      lake = av::GenerateLake(av::EnterpriseLakeConfig(/*num_columns=*/3000));
      std::printf("generated enterprise lake: %zu columns\n",
                  lake.num_columns());
    }
    index = av::BuildIndex(lake, cfg, &report);
  }
  std::printf("indexed %zu columns in %.2fs -> %zu patterns (%.1f MB)\n",
              report.columns_indexed, report.seconds, index.size(),
              static_cast<double>(index.ApproxBytes()) / 1e6);
  if (report.used_spill) {
    std::printf("out-of-core: %zu spill runs (%.1f MB), %zu extra merge "
                "passes, peak chunk-index residency %.1f MB\n",
                report.spill_runs,
                static_cast<double>(report.spill_bytes) / 1e6,
                report.merge_passes,
                static_cast<double>(report.peak_chunk_index_bytes) / 1e6);
  }
  std::printf("\n");

  std::printf("== common data domains of this lake (Figure 3 style) ==\n");
  std::printf("%-52s %10s %8s\n", "pattern", "columns", "FPR");
  for (const auto& hp : av::HeadPatterns(index, 20, 0.02)) {
    std::printf("%-52s %10llu %8.4f\n", hp.pattern.c_str(),
                static_cast<unsigned long long>(hp.coverage), hp.fpr);
  }

  std::printf("\n== index distributions (Figure 13) ==\n");
  av::PrintIndexDistributions(av::AnalyzeIndex(index));

  const char* out = argc > 2 ? argv[2] : "/tmp/autovalidate.index";
  const av::Status st = index.Save(out);
  if (!st.ok()) {
    std::printf("failed to save index: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nindex saved to %s (reusable via PatternIndex::Load)\n", out);
  return 0;
}
